"""Ground-truth path containers.

The data generators produce :class:`GroundTruthPath` instances -- the exact
positions of a simulated mobile object at every tick.  The mobility layer
turns them into the server-side uncertain trajectories the miner consumes;
the prediction experiments keep them around to judge mis-predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class GroundTruthPath:
    """Exact positions of one object at unit-time ticks.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array, one row per tick.
    object_id:
        Identifier carried through to the tracked trajectory.
    label:
        Optional class label (e.g. the bus route) used by the
        classification application.
    """

    positions: np.ndarray
    object_id: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        positions = np.array(self.positions, dtype=float, copy=True)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(
                f"positions must be an (n, 2) array, got shape {positions.shape}"
            )
        if len(positions) < 2:
            raise ValueError("a path needs at least two ticks")
        if not np.all(np.isfinite(positions)):
            raise ValueError("positions must be finite")
        positions.setflags(write=False)
        object.__setattr__(self, "positions", positions)

    def __len__(self) -> int:
        return len(self.positions)

    def velocities(self) -> np.ndarray:
        """Exact per-tick displacement vectors, shape ``(n - 1, 2)``."""
        return np.diff(self.positions, axis=0)

    def total_distance(self) -> float:
        """Total path length."""
        v = self.velocities()
        return float(np.hypot(v[:, 0], v[:, 1]).sum())


def paths_bounding_box(paths: Sequence[GroundTruthPath]) -> tuple[float, float, float, float]:
    """(min_x, min_y, max_x, max_y) over a collection of paths."""
    if not paths:
        raise ValueError("no paths")
    all_pos = np.concatenate([p.positions for p in paths])
    mins = all_pos.min(axis=0)
    maxs = all_pos.max(axis=0)
    return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])
