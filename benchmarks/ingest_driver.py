"""CI driver for the live ingest path: feed waves, verify exact republish.

Boots a :class:`PatternServer` with ingest enabled, feeds it three waves of
dead-reckoned trajectory reports over a real socket, and asserts that the
top-k the server republished after the last wave is *identical* -- cells
and NM values, no tolerance -- to a from-scratch
:class:`TrajPatternMiner` run over the final trajectory set.  Exits
non-zero on any mismatch, so CI fails loudly if the incremental fold or
the warm-started miner ever drifts from the batch path.

Usage::

    PYTHONPATH=src python benchmarks/ingest_driver.py [--k 4] [--waves 3]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.core.engine import NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator
from repro.mobility.models import LinearModel
from repro.mobility.reporting import (
    ReportingConfig,
    dead_reckon,
    trajectory_from_report,
)
from repro.serve import (
    IngestConfig,
    PatternServer,
    ServeConfig,
    ServingSnapshot,
    SnapshotStore,
    protocol,
)
from repro.trajectory.dataset import TrajectoryDataset


def build_reports(n_objects: int, n_ticks: int, seed: int) -> list[dict]:
    """Dead-reckon a zebra herd into wire-format ingest reports."""
    config = ZebraNetConfig(
        n_groups=max(1, n_objects // 5), zebras_per_group=5, n_ticks=n_ticks
    )
    rng = np.random.default_rng(seed)
    paths = ZebraNetGenerator(config).generate_paths(rng)[:n_objects]
    reporting = ReportingConfig(uncertainty=0.02, confidence_c=2.0)
    return [
        dead_reckon(path, LinearModel(), reporting).to_report(interpolated=True)
        for path in paths
    ]


async def drive(
    server: PatternServer, host: str, port: int, waves: list[list[dict]]
) -> list[dict]:
    reader, writer = await asyncio.open_connection(
        host, port, limit=protocol.MAX_LINE_BYTES
    )
    responses = []
    for i, wave in enumerate(waves):
        writer.write(protocol.encode({"op": "ingest", "id": i, "reports": wave}))
        await writer.drain()
        responses.append(protocol.decode_line(await reader.readline()))
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return responses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--waves", type=int, default=3)
    parser.add_argument("--objects-per-wave", type=int, default=3)
    parser.add_argument("--base-objects", type=int, default=8)
    parser.add_argument("--n-ticks", type=int, default=25)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    total = args.base_objects + args.waves * args.objects_per_wave
    reports = build_reports(total, args.n_ticks, args.seed)
    # Round-trip every report through JSON once, exactly as the wire does,
    # so the reference mine sees bit-identical floats to the server's.
    reports = json.loads(json.dumps(reports))
    base = reports[: args.base_objects]
    waves = [
        reports[
            args.base_objects
            + i * args.objects_per_wave : args.base_objects
            + (i + 1) * args.objects_per_wave
        ]
        for i in range(args.waves)
    ]

    boot_dataset = TrajectoryDataset(
        [trajectory_from_report(r) for r in base]
    )
    snapshot = ServingSnapshot.from_dataset(boot_dataset, version="ci-ingest")
    store = SnapshotStore(snapshot)
    server = PatternServer(
        store,
        ServeConfig(),
        ingest=IngestConfig(k=args.k, remine_every=1),
    )

    async def scenario():
        host, port = await server.start()
        try:
            return await drive(server, host, port, waves)
        finally:
            await server.stop()

    responses = asyncio.run(scenario())
    for i, response in enumerate(responses):
        if not response.get("ok"):
            print(f"FAIL: wave {i} rejected: {response}", file=sys.stderr)
            return 1
        if not response.get("republished"):
            print(f"FAIL: wave {i} did not republish: {response}", file=sys.stderr)
            return 1
    last = responses[-1]
    if last["generation"] != args.waves:
        print(
            f"FAIL: expected generation {args.waves}, got {last['generation']}",
            file=sys.stderr,
        )
        return 1
    if store.current.version != f"ci-ingest+g{args.waves}":
        print(f"FAIL: unexpected version {store.current.version}", file=sys.stderr)
        return 1

    # From-scratch reference over the final trajectory set, same grid and
    # engine config as the serving snapshot.
    final_dataset = TrajectoryDataset(
        [trajectory_from_report(r) for r in reports]
    )
    fresh = NMEngine(final_dataset, snapshot.grid, snapshot.engine.config)
    expected = TrajPatternMiner(fresh, k=args.k).mine()
    want = [(tuple(p.cells), float(nm)) for p, nm in expected.as_pairs()]
    got = [(tuple(e["cells"]), float(e["nm"])) for e in last["top_k"]]
    if want != got:
        print("FAIL: republished top-k != from-scratch mine", file=sys.stderr)
        print(f"  want: {want}", file=sys.stderr)
        print(f"  got:  {got}", file=sys.stderr)
        return 1
    print(
        f"PASS: {args.waves} waves x {args.objects_per_wave} reports -> "
        f"generation {last['generation']}, top-{args.k} identical to "
        f"from-scratch mine ({len(final_dataset)} trajectories, "
        f"{final_dataset.total_snapshots()} snapshots)"
    )
    for cells, nm in got:
        print(f"  {list(cells)} nm={nm:.6f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
