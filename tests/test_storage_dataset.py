"""Lazy StoreDataset equivalence: same answers as the eager dataset, less RAM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.index_cache import dataset_fingerprint
from repro.storage import StoreDataset, open_store, write_store
from repro.testkit.datasets import seeded_dataset


@pytest.fixture(scope="module")
def eager():
    return seeded_dataset(5, n_trajectories=14, n_ticks=30)


@pytest.fixture
def store(eager, tmp_path):
    path = write_store(eager, tmp_path / "d.tjc")
    with open_store(path) as opened:
        yield opened


class TestAggregateEquivalence:
    def test_columns_bit_identical(self, eager, store):
        lazy = store.dataset()
        assert np.array_equal(lazy.all_means(), eager.all_means())
        assert np.array_equal(lazy.all_sigmas(), eager.all_sigmas())
        assert np.array_equal(lazy.lengths(), eager.lengths())
        assert lazy.total_snapshots() == eager.total_snapshots()
        assert lazy.mean_length() == eager.mean_length()
        assert lazy.max_sigma() == eager.max_sigma()

    def test_bounding_box_from_footer_is_exact(self, eager, store):
        lazy = store.dataset()
        assert lazy.bounding_box() == eager.bounding_box()
        assert lazy.bounding_box(n_sigmas=3.0) == eager.bounding_box(n_sigmas=3.0)

    def test_trajectory_access(self, eager, store):
        lazy = store.dataset()
        assert len(lazy) == len(eager)
        for i in (0, 7, len(eager) - 1):
            assert lazy.trajectories[i].object_id == eager.trajectories[i].object_id
            assert np.array_equal(
                np.asarray(lazy.trajectories[i].means),
                np.asarray(eager.trajectories[i].means),
            )
        # negative indexing and iteration both work
        assert lazy.trajectories[-1].object_id == eager.trajectories[-1].object_id
        assert [t.object_id for t in lazy] == [t.object_id for t in eager]

    def test_row_columns_matches_all_means_slices(self, eager, store):
        lazy = store.dataset()
        for lo, hi in [(0, 10), (13, 57), (0, eager.total_snapshots())]:
            means, sigmas = lazy.row_columns(lo, hi)
            assert np.array_equal(means, eager.all_means()[lo:hi])
            assert np.array_equal(sigmas, eager.all_sigmas()[lo:hi])
        with pytest.raises(IndexError):
            lazy.row_columns(0, eager.total_snapshots() + 1)

    def test_mmap_mode_returns_views(self, store):
        lazy = store.dataset(mode="mmap")
        means = lazy.all_means()
        # zero-copy: the array must be backed by the store's memory map,
        # not a decoded copy.
        assert isinstance(means.base, np.memmap) or isinstance(means, np.memmap)


class TestSpans:
    def test_span_is_the_eager_subrange(self, eager, store):
        span = store.span(4, 9)
        sub = eager.trajectories[4:9]
        assert len(span) == 5
        assert [t.object_id for t in span] == [t.object_id for t in sub]
        lo = int(np.sum(eager.lengths()[:4]))
        hi = lo + int(np.sum(eager.lengths()[4:9]))
        assert np.array_equal(span.all_means(), eager.all_means()[lo:hi])

    def test_content_fingerprint_full_span_only(self, eager, store):
        full = store.dataset()
        assert full.content_fingerprint == store.content_hash
        assert dataset_fingerprint(full) == dataset_fingerprint(eager)
        partial = store.span(0, 3)
        with pytest.raises(AttributeError):
            partial.content_fingerprint
        # a partial span still fingerprints -- by hashing its contents,
        # which must differ from the full store's.
        assert dataset_fingerprint(partial) != dataset_fingerprint(eager)

    def test_store_ref_round_trips(self, store):
        span = store.span(2, 6)
        path, lo, hi = span.store_ref
        assert path == str(store.path)
        assert (lo, hi) == (2, 6)

    def test_out_of_range_span_rejected(self, store):
        with pytest.raises(IndexError):
            StoreDataset(store, 0, store.n_trajectories + 1)


class TestEngineEquivalence:
    def test_engine_bit_identical_to_eager(self, eager, store):
        grid = eager.make_grid(0.1)
        config = EngineConfig(delta=0.08, min_prob=1e-6)
        ram = NMEngine(eager, grid, config)
        lazy = NMEngine(store.dataset(), grid, config)
        for a, b in zip(ram.index_arrays(), lazy.index_arrays()):
            assert np.array_equal(a, b)
        cells = ram.active_cells
        patterns = [TrajectoryPattern((c,)) for c in cells[:6]] + [
            TrajectoryPattern((cells[0], cells[1])),
            TrajectoryPattern((cells[1], cells[0])),
        ]
        assert np.array_equal(ram.nm_batch(patterns), lazy.nm_batch(patterns))
        assert np.array_equal(ram.match_batch(patterns), lazy.match_batch(patterns))

    def test_grid_from_store_matches_grid_from_ram(self, eager, store):
        # suggest-free path: grids derived from footer stats equal grids
        # derived from the dense columns, so cache keys line up too.
        assert store.dataset().make_grid(0.05) == eager.make_grid(0.05)
