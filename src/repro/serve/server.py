"""The asyncio pattern-serving server (``repro serve``).

One process, one event loop, one evaluation thread.  Connections speak
the NDJSON protocol of :mod:`repro.serve.protocol`; every request line
becomes a task, so pipelined requests on one connection are processed
concurrently and the :class:`~repro.serve.batcher.MicroBatcher` can
coalesce them (responses correlate by ``id``, not order).

Threading model: all admission, batching and socket work stays on the
event loop; the numpy-heavy engine/library evaluation runs on a dedicated
single-worker thread pool.  One worker is deliberate -- the engine is
CPU-bound (more threads would just contend on the GIL between numpy
calls) and a single evaluation lane makes the batch service time that the
admission controller estimates actually meaningful.

Requests capture the current :class:`~repro.serve.snapshot.ServingSnapshot`
at admission and batches are keyed by *that object*, so an admin ``swap``
is atomic from the clients' perspective: in-flight requests finish against
the generation that admitted them, later requests see the new one, and no
batch ever mixes generations.

Overload behaviour differs by op on purpose: ``score`` sheds with an
explicit ``overloaded`` error (the client owns the retry policy), while
``predict`` *degrades* -- it answers from the dead-reckoning motion model
alone (``"degraded": true``), because a tracking client needs some answer
every tick and the motion model is exactly the paper's fallback when no
pattern confirms.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.apps.prediction import PatternLibrary
from repro.core.engine import NMEngine
from repro.core.incremental import IncrementalIndexer
from repro.core.trajpattern import TrajPatternMiner
from repro.mobility.models import make_model
from repro.obs import logs, manifest, metrics, tracing
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, OverloadedError
from repro.serve.snapshot import ServingSnapshot, SnapshotStore
from repro.testkit import faults
from repro.trajectory.dataset import TrajectoryDataset

_log = logs.get_logger("serve.server")


@dataclass
class ServeConfig:
    """Server tuning knobs (defaults are sane for small datasets).

    ``port = 0`` asks the OS for a free port (the bound port is available
    as ``PatternServer.port`` after ``start()``).  ``max_delay_ms`` is the
    micro-batching window: the most latency an isolated request pays to
    wait for company.  ``default_timeout_ms`` is the per-request deadline
    when the client does not send ``timeout_ms``; ``None`` disables
    deadlines by default.  ``fallback_model`` names the dead-reckoning
    model (``lm`` / ``lkf`` / ``rmf``) answering degraded predictions.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    max_delay_ms: float = 2.0
    max_queue: int = 512
    default_timeout_ms: float | None = 1000.0
    max_inflight_per_conn: int = 128
    fallback_model: str = "lm"
    allow_shutdown: bool = True
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.max_inflight_per_conn < 1:
            raise ValueError("max_inflight_per_conn must be at least 1")


@dataclass
class IngestConfig:
    """Live-stream ingestion knobs (the ``ingest`` op is off without one).

    ``remine_every`` is the republish cadence in ingest batches: every
    N-th batch triggers a warm-started re-mine and a snapshot swap (1 =
    republish on every batch).  ``window`` bounds resident trajectories --
    after each append the oldest beyond the window are evicted (sliding
    window over arrival order); ``None`` keeps everything.  ``k`` /
    ``min_length`` parameterise the top-k re-mine that feeds the published
    pattern library.
    """

    k: int = 8
    remine_every: int = 1
    window: int | None = None
    min_length: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.remine_every < 1:
            raise ValueError("remine_every must be positive")
        if self.window is not None and self.window < 1:
            raise ValueError("window must be positive")
        if self.min_length < 1:
            raise ValueError("min_length must be at least 1")


class _LiveIngest:
    """The server's live mining state: one engine folded in place.

    Owns an :class:`IncrementalIndexer` over a private engine seeded from
    the boot snapshot (eager dataset copy, shared prebuilt index arrays --
    folds allocate fresh arrays, so the boot generation's index is never
    written to).  All methods run on the server's single evaluation
    thread; the event loop serialises ingest requests with a lock.
    """

    def __init__(
        self,
        snapshot: ServingSnapshot,
        config: IngestConfig,
        cache_dir: str | None,
    ) -> None:
        # An eager copy detaches the live dataset from a store-backed boot
        # snapshot, so retiring that generation can close its file handle.
        dataset = TrajectoryDataset(
            list(snapshot.dataset), metadata={"origin": snapshot.version}
        )
        engine_config = replace(snapshot.engine.config, cache_dir=None)
        engine = NMEngine(
            dataset,
            snapshot.grid,
            engine_config,
            prebuilt=snapshot.engine.index_arrays(),
        )
        self.indexer = IncrementalIndexer(engine, window=config.window)
        self.config = config
        self.cache_dir = cache_dir
        self.base_version = snapshot.version
        self.generation = 0
        self.batches = 0
        self.warm_state = None
        self.last_mine_iterations = 0
        self.last_mine_s = 0.0

    def fold(
        self, reports: list
    ) -> tuple[dict[str, Any], ServingSnapshot | None]:
        """Append one report batch; re-mine and build a snapshot on cadence."""
        stats = self.indexer.append(reports)
        self.batches += 1
        summary: dict[str, Any] = {
            "appended": stats["appended"],
            "evicted": stats["evicted"],
            "n_trajectories": stats["n_trajectories"],
            "total_snapshots": stats["total_snapshots"],
            "generation": self.generation,
            "republished": False,
        }
        if self.batches % self.config.remine_every != 0:
            return summary, None
        engine = self.indexer.engine
        miner = TrajPatternMiner(
            engine,
            k=self.config.k,
            min_length=self.config.min_length,
            warm_state=self.warm_state,
        )
        result = miner.mine()
        self.warm_state = result.warm_state
        self.last_mine_iterations = result.stats.iterations
        self.last_mine_s = result.stats.wall_time_s
        self.generation += 1
        if self.cache_dir is not None:
            # Recomputes the content key over the *current* dataset -- an
            # in-place append must never overwrite the boot dataset's entry.
            self.indexer.persist(self.cache_dir)
        # The published engine shares the live index arrays without copying:
        # the next fold replaces the live arrays wholesale instead of
        # mutating them, so a published generation stays frozen.
        dataset = engine.dataset
        published = NMEngine(
            dataset, engine.grid, engine.config, prebuilt=engine.index_arrays()
        )
        library = PatternLibrary(
            result.patterns, engine.grid, delta=engine.config.delta
        )
        snapshot = ServingSnapshot(
            f"{self.base_version}+g{self.generation}",
            dataset,
            engine.grid,
            published,
            library=library,
            source="<ingest>",
        )
        summary.update(
            republished=True,
            generation=self.generation,
            version=snapshot.version,
            mine_iterations=result.stats.iterations,
            omega=result.omega,
            top_k=[
                {"cells": [int(c) for c in p.cells], "nm": float(nm)}
                for p, nm in result.as_pairs()
            ],
        )
        return summary, snapshot

    def stats(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "batches": self.batches,
            "n_trajectories": len(self.indexer.engine.dataset),
            "total_snapshots": self.indexer.engine.dataset.total_snapshots(),
            "index_epoch": self.indexer.engine.index_epoch,
            "appends": self.indexer.appends,
            "evictions": self.indexer.evictions,
            "last_mine_iterations": self.last_mine_iterations,
            "last_mine_s": self.last_mine_s,
        }


class PatternServer:
    """Serve scoring / prediction / admin queries for a snapshot store."""

    def __init__(
        self,
        store: SnapshotStore,
        config: ServeConfig | None = None,
        ingest: IngestConfig | None = None,
    ) -> None:
        self.store = store
        self.config = config or ServeConfig()
        self.ingest_config = ingest
        self._ingest_state: _LiveIngest | None = None
        self._ingest_lock = asyncio.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-eval"
        )
        self._batcher = MicroBatcher(
            self._evaluate_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay_ms / 1000.0,
            max_queue=self.config.max_queue,
        )
        self._shutdown = asyncio.Event()
        self._started_at: float | None = None
        self._run_span = None
        self._run_ctx: tracing.SpanContext | None = None
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> tuple[str, int]:
        """Bind, spawn the batcher worker and accept connections."""
        self._run_span = tracing.span(
            "serve.run",
            version=self.store.current.version,
            host=self.config.host,
        )
        self._run_span.__enter__()
        self._run_ctx = self._run_span.context()
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._started_at = time.monotonic()
        host, port = self._server.sockets[0].getsockname()[:2]
        _log.info(
            "serving",
            extra={"host": host, "port": port, "version": self.store.current.version},
        )
        return host, port

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._batcher.close()
        self._executor.shutdown(wait=False)
        if self._run_span is not None:
            self._run_span.__exit__(None, None, None)
            self._run_span = None
            self._run_ctx = None

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics.counter("serve.connections").inc()
        write_lock = asyncio.Lock()
        inflight = asyncio.Semaphore(self.config.max_inflight_per_conn)
        tasks: set[asyncio.Task] = set()
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            code="bad_request", detail="request line too long"
                        ),
                    )
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF mid-frame: the peer died (or was cut off) part-way
                    # through writing a request.  A torn frame is not a
                    # request -- executing it would act on a truncated JSON
                    # document that happens to parse (e.g. a shutdown whose
                    # arguments were lost), so it is dropped.
                    metrics.counter("serve.torn_frames").inc()
                    _log.debug("dropping torn frame at EOF", extra={"bytes": len(line)})
                    break
                if not line.strip():
                    continue
                await inflight.acquire()
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock, inflight)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Server teardown cancels handler tasks blocked in readline;
            # swallow so the cancellation is a clean close, not log noise.
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        inflight: asyncio.Semaphore,
    ) -> None:
        t0 = time.monotonic_ns()
        rid = None
        op = "unknown"
        req_ctx: tracing.SpanContext | None = None
        try:
            try:
                request = protocol.decode_line(line)
                rid = protocol.request_id(request)
                op = request.get("op")
                if op not in protocol.OPS:
                    raise protocol.ProtocolError(
                        f"unknown op {op!r}", code="unknown_op"
                    )
                protocol.check_version(request)
                inbound = protocol.parse_trace(request)
                metrics.counter(f"serve.{op}.requests").inc()
                # The request span adopts the caller's wire context when one
                # was sent (joining the client's trace across the socket) and
                # otherwise hangs off the server's own run span.  Its context
                # flows into the batcher so queue/batch/eval become children.
                with tracing.span_at(
                    inbound if inbound is not None else self._run_ctx,
                    f"serve.{op}",
                ) as req_span:
                    req_ctx = req_span.context()
                    response = await self._dispatch(op, request, rid, req_ctx)
            except protocol.ProtocolError as exc:
                metrics.counter("serve.errors.bad_request").inc()
                response = protocol.error_response(
                    rid, exc.code, exc.detail, **exc.fields
                )
            except OverloadedError as exc:
                metrics.counter("serve.errors.overloaded").inc()
                response = protocol.error_response(
                    rid, "overloaded", reason=exc.reason
                )
            except Exception as exc:  # noqa: BLE001 - must answer the client
                _log.warning(
                    "internal error",
                    extra={"op": op, "error": type(exc).__name__},
                )
                metrics.counter("serve.errors.internal").inc()
                response = protocol.error_response(
                    rid, "internal", f"{type(exc).__name__}: {exc}"
                )
            self.requests_served += 1
            if req_ctx is not None:
                ts_ns = time.time_ns()
                send_t0 = time.perf_counter_ns()
                await self._send(writer, write_lock, response)
                tracing.record_span(
                    "serve.respond",
                    req_ctx,
                    ts_ns,
                    time.perf_counter_ns() - send_t0,
                )
            else:
                await self._send(writer, write_lock, response)
        finally:
            inflight.release()
            if isinstance(op, str) and op in protocol.OPS:
                metrics.sliding_quantile_histogram(
                    f"serve.{op}.latency_ns", unit="ns"
                ).observe(
                    time.monotonic_ns() - t0,
                    exemplar=req_ctx.trace_id if req_ctx is not None else None,
                )

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, response: dict
    ) -> None:
        async with write_lock:
            try:
                writer.write(protocol.encode(response))
                await writer.drain()
            except (OSError, RuntimeError):
                # The client hung up with this response in flight.  Responses
                # are awaited by per-request tasks that share the batcher
                # pipeline with *other* connections, so a write failure here
                # must stay here: raising would poison the gather in
                # _on_connection and count as an internal error for work
                # that actually completed.  RuntimeError covers writes
                # racing transport/event-loop teardown; ConnectionError is
                # an OSError subclass.
                metrics.counter("serve.dropped_responses").inc()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self, op: str, request: dict, rid: Any, ctx: tracing.SpanContext | None
    ) -> dict:
        if op == "hello":
            protocol.parse_hello(request)
            return protocol.ok_response(
                rid,
                version=protocol.PROTOCOL_VERSION,
                capabilities=list(protocol.CAPABILITIES),
                snapshot_version=self.store.current.version,
            )
        if op == "score":
            return await self._handle_score(request, rid, ctx)
        if op == "predict":
            return await self._handle_predict(request, rid, ctx)
        if op == "health":
            return protocol.ok_response(
                rid,
                status="ok",
                version=self.store.current.version,
                uptime_s=(
                    time.monotonic() - self._started_at
                    if self._started_at is not None
                    else 0.0
                ),
            )
        if op == "stats":
            return protocol.ok_response(rid, stats=self.stats())
        if op == "describe":
            snapshot = self.store.acquire()
            try:
                return protocol.ok_response(rid, **snapshot.describe())
            finally:
                self.store.release(snapshot)
        if op == "swap":
            return await self._handle_swap(request, rid)
        if op == "ingest":
            return await self._handle_ingest(request, rid)
        # op == "shutdown"
        if not self.config.allow_shutdown:
            raise protocol.ProtocolError(
                "shutdown is disabled on this server", code="forbidden"
            )
        self._shutdown.set()
        return protocol.ok_response(rid, stopping=True)

    def _deadline(self, request: dict) -> float | None:
        timeout_ms = protocol.parse_timeout_ms(
            request, self.config.default_timeout_ms
        )
        if timeout_ms is None:
            return None
        return time.monotonic() + timeout_ms / 1000.0

    async def _handle_score(
        self, request: dict, rid: Any, ctx: tracing.SpanContext | None
    ) -> dict:
        # Pin the admitted generation until evaluation finishes: a swap
        # landing mid-batch retires the old snapshot, and a store-backed one
        # closes its file handle the moment the last pin drops.
        snapshot = self.store.acquire()
        try:
            patterns, measure = protocol.parse_score(request, snapshot.grid.n_cells)
            values = await self._batcher.submit(
                (id(snapshot), measure),
                _ScoreWork(snapshot, measure, patterns),
                deadline=self._deadline(request),
                ctx=ctx,
            )
        finally:
            self.store.release(snapshot)
        return protocol.ok_response(
            rid,
            measure=measure,
            values=protocol.values_field(values),
            version=snapshot.version,
        )

    async def _handle_predict(
        self, request: dict, rid: Any, ctx: tracing.SpanContext | None
    ) -> dict:
        snapshot = self.store.acquire()
        try:
            recent, sigma = protocol.parse_predict(request)
            result = await self._batcher.submit(
                (id(snapshot), "predict"),
                _PredictWork(snapshot, recent, sigma),
                deadline=self._deadline(request),
                ctx=ctx,
            )
        except OverloadedError as exc:
            # Degrade, don't refuse: a tracking client needs an answer every
            # tick, and the motion model is the paper's own fallback.
            metrics.counter("serve.predict.degraded").inc()
            position = _motion_model_position(recent, self.config.fallback_model)
            return protocol.ok_response(
                rid,
                position=[float(position[0]), float(position[1])],
                source="model",
                degraded=True,
                reason=exc.reason,
                version=snapshot.version,
            )
        finally:
            self.store.release(snapshot)
        position, source = result
        return protocol.ok_response(
            rid,
            position=[float(position[0]), float(position[1])],
            source=source,
            degraded=False,
            version=snapshot.version,
        )

    async def _handle_swap(self, request: dict, rid: Any) -> dict:
        path = protocol.parse_swap(request)
        loop = asyncio.get_running_loop()
        try:
            snapshot = await loop.run_in_executor(
                None, lambda: ServingSnapshot.load(path, cache_dir=self.config.cache_dir)
            )
        except (OSError, ValueError) as exc:
            raise protocol.ProtocolError(f"cannot load snapshot: {exc}") from exc
        previous = self.store.swap(snapshot)
        metrics.counter("serve.swaps").inc()
        return protocol.ok_response(
            rid, version=snapshot.version, previous=previous.version
        )

    async def _handle_ingest(self, request: dict, rid: Any) -> dict:
        if self.ingest_config is None:
            raise protocol.ProtocolError(
                "ingest is not enabled on this server", code="forbidden"
            )
        reports = protocol.parse_ingest(request)
        loop = asyncio.get_running_loop()
        # One fold at a time: report batches are order-dependent (the
        # sliding window evicts in arrival order) and the live engine is a
        # single mutable structure.  The fold itself runs on the evaluation
        # thread, serialised with score/predict batches.
        async with self._ingest_lock:
            if self._ingest_state is None:
                boot = self.store.acquire()
                try:
                    self._ingest_state = await loop.run_in_executor(
                        self._executor,
                        _LiveIngest,
                        boot,
                        self.ingest_config,
                        self.config.cache_dir,
                    )
                finally:
                    self.store.release(boot)
            summary, snapshot = await loop.run_in_executor(
                self._executor, self._ingest_state.fold, reports
            )
        if snapshot is not None:
            self.store.swap(snapshot)
            metrics.counter("serve.ingest.republished").inc()
        metrics.counter("serve.ingest.reports").inc(len(reports))
        return protocol.ok_response(rid, **summary)

    # -- evaluation --------------------------------------------------------

    async def _evaluate_batch(self, key: Any, payloads: list[Any]) -> list[Any]:
        faults.fire("serve.batch.handler", key=key, n_items=len(payloads))
        loop = asyncio.get_running_loop()
        # The batcher publishes the in-flight batch's span context; passing
        # it explicitly keeps the eval span parented correctly from inside
        # the executor thread (the ambient stack belongs to the loop thread).
        ctx = self._batcher.batch_context
        if isinstance(payloads[0], _ScoreWork):
            return await loop.run_in_executor(
                self._executor, _evaluate_score_batch, payloads, ctx
            )
        return await loop.run_in_executor(
            self._executor,
            _evaluate_predict_batch,
            payloads,
            self.config.fallback_model,
            ctx,
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        current = self.store.current
        return {
            "version": current.version,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "requests_served": self.requests_served,
            "swaps": self.store.swaps,
            "queue_depth": self._batcher.queue_depth,
            "batcher": self._batcher.stats.as_dict(),
            "rss_peak_bytes": manifest.peak_rss_bytes(),
            "latency": self._latency_stats(),
            "ingest": (
                self._ingest_state.stats()
                if self._ingest_state is not None
                else None
            ),
        }

    def _latency_stats(self) -> dict:
        """Per-op latency quantiles from the metrics registry.

        Empty when metrics are disabled (the batcher counters above are
        always on, so ``repro top`` still has a dashboard without them).
        Each op reports all-time quantiles plus the last-60s rolling
        window, which decays after load stops -- unlike all-time p99,
        which remembers every spike forever.
        """
        registry = metrics.get_registry()
        out: dict = {}
        for op in protocol.OPS:
            hist = registry.find_histogram(f"serve.{op}.latency_ns")
            if hist is None or hist.count == 0:
                continue
            entry: dict = {
                "count": hist.count,
                "mean_ms": hist.mean / 1e6,
                "max_ms": hist.max / 1e6,
            }
            if isinstance(hist, metrics.QuantileHistogram):
                entry["all_time_ms"] = {
                    k: v / 1e6 for k, v in hist.quantiles().items()
                }
            if isinstance(hist, metrics.SlidingQuantileHistogram):
                window = hist.window_snapshot()
                entry["window"] = {
                    "window_s": window["window_s"],
                    "count": window["count"],
                    "rate_per_s": window["rate_per_s"],
                    "quantiles_ms": {
                        k: v / 1e6 for k, v in window["quantiles"].items()
                    },
                    "exemplars": window["exemplars"],
                }
            out[op] = entry
        return out


class _ScoreWork:
    __slots__ = ("snapshot", "measure", "patterns")

    def __init__(self, snapshot, measure, patterns) -> None:
        self.snapshot = snapshot
        self.measure = measure
        self.patterns = patterns


class _PredictWork:
    __slots__ = ("snapshot", "recent", "sigma")

    def __init__(self, snapshot, recent, sigma) -> None:
        self.snapshot = snapshot
        self.recent = recent
        self.sigma = sigma


def _evaluate_score_batch(
    works: list[_ScoreWork], ctx: tracing.SpanContext | None = None
) -> list[np.ndarray]:
    """One engine call for a whole batch: concatenate, evaluate, split.

    Every work item shares the batch key, hence the same snapshot and
    measure -- this is where micro-batching pays, because
    ``nm_batch(m patterns)`` costs far less than ``m`` calls of 1.
    """
    snapshot = works[0].snapshot
    engine = snapshot.engine
    flat = [p for work in works for p in work.patterns]
    with tracing.span_at(
        ctx, "serve.eval.score", n_requests=len(works), n_patterns=len(flat)
    ):
        if works[0].measure == "nm":
            values = engine.nm_batch(flat)
        else:
            values = engine.match_batch(flat)
    out: list[np.ndarray] = []
    offset = 0
    for work in works:
        out.append(values[offset : offset + len(work.patterns)])
        offset += len(work.patterns)
    return out


def _evaluate_predict_batch(
    works: list[_PredictWork],
    fallback_model: str,
    ctx: tracing.SpanContext | None = None,
) -> list[tuple[np.ndarray, str]]:
    """Pattern-confirmed next positions, motion-model fallback otherwise."""
    out: list[tuple[np.ndarray, str]] = []
    with tracing.span_at(ctx, "serve.eval.predict", n_requests=len(works)):
        for work in works:
            library = work.snapshot.library
            position = None
            if library is not None:
                # Velocity patterns confirm against the velocity history;
                # differencing doubles the variance, hence sqrt(2) sigma.
                velocities = np.diff(work.recent, axis=0)
                v_next = library.predict_next_velocity(
                    velocities, float(np.sqrt(2.0)) * work.sigma
                )
                if v_next is not None:
                    position = work.recent[-1] + v_next
            if position is not None:
                out.append((position, "pattern"))
            else:
                out.append(
                    (_motion_model_position(work.recent, fallback_model), "model")
                )
    return out


def _motion_model_position(recent: np.ndarray, model_name: str) -> np.ndarray:
    """Dead-reckoning prediction from the recent reports alone."""
    model = make_model(model_name)
    for t, point in enumerate(recent):
        model.observe(float(t), point)
    return np.asarray(model.predict(float(len(recent))), dtype=float)
