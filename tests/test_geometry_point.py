"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point, distance

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPointArithmetic:
    def test_add(self):
        assert Point(1.0, 2.0) + Point(0.5, -1.0) == Point(1.5, 1.0)

    def test_sub(self):
        assert Point(1.0, 2.0) - Point(0.5, 1.0) == Point(0.5, 1.0)

    def test_scalar_multiply_both_sides(self):
        assert Point(1.0, -2.0) * 2 == Point(2.0, -4.0)
        assert 2 * Point(1.0, -2.0) == Point(2.0, -4.0)

    def test_divide(self):
        assert Point(2.0, 4.0) / 2 == Point(1.0, 2.0)

    def test_negate(self):
        assert -Point(1.0, -2.0) == Point(-1.0, 2.0)

    def test_unpacking(self):
        x, y = Point(3.0, 4.0)
        assert (x, y) == (3.0, 4.0)

    def test_as_tuple(self):
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)


class TestPointGeometry:
    def test_norm(self):
        assert Point(3.0, 4.0).norm() == pytest.approx(5.0)

    def test_dot(self):
        assert Point(1.0, 2.0).dot(Point(3.0, 4.0)) == pytest.approx(11.0)

    def test_distance_to(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_function_accepts_tuples(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
        assert distance(Point(0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_immutability(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 5.0


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        assert distance((ax, ay), (bx, by)) == pytest.approx(
            distance((bx, by), (ax, ay))
        )

    @given(finite, finite)
    def test_distance_to_self_is_zero(self, x, y):
        assert distance((x, y), (x, y)) == 0.0

    @given(finite, finite, finite, finite)
    def test_add_sub_roundtrip(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        back = (a + b) - b
        assert math.isclose(back.x, a.x, abs_tol=1e-6)
        assert math.isclose(back.y, a.y, abs_tol=1e-6)

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = (ax, ay), (bx, by), (cx, cy)
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6
