"""Fault-injected worker crashes: the engine must fail loudly and leak nothing.

Every scenario kills (or errors) a shard worker at a specific point --
startup, mid-batch, during the export/release shm handoff -- and asserts
the two invariants the fixes guarantee:

* the failure surfaces as :class:`WorkerCrashError` (pipe death) or a
  ``RuntimeError`` carrying the worker traceback (reported error), never a
  bare ``EOFError``/``BrokenPipeError``;
* ``/dev/shm`` holds no ``repro-shm-*`` segment afterwards, whichever side
  created it (the autouse fixture enforces this for every test).

Faults armed in the parent are inherited by forked workers, which is how a
test reaches code running inside a worker process.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine, WorkerCrashError
from repro.core.pattern import TrajectoryPattern
from repro.testkit import faults
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture(autouse=True)
def clean_state():
    faults.disarm()
    yield
    faults.disarm()
    assert glob.glob("/dev/shm/repro-shm-*") == []


def _dataset(n=8, length=10, seed=42) -> TrajectoryDataset:
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(n):
        start = rng.uniform(0.1, 0.4, 2)
        means = start + np.cumsum(rng.normal(0.02, 0.004, (length, 2)), axis=0)
        trajectories.append(UncertainTrajectory(means, 0.015, object_id=f"o{i}"))
    return TrajectoryDataset(trajectories)


@pytest.fixture(scope="module")
def scenario():
    dataset = _dataset()
    grid = dataset.make_grid(0.05)
    config = EngineConfig(delta=0.05, min_prob=1e-6)
    return dataset, grid, config


def _patterns(dataset, grid, config, n=6):
    cells = NMEngine(dataset, grid, config).active_cells
    return [TrajectoryPattern((c,)) for c in cells[:n]]


class TestCrashMidBatch:
    def test_worker_death_raises_worker_crash_and_closes(self, scenario):
        dataset, grid, config = scenario
        patterns = _patterns(dataset, grid, config)
        faults.arm(
            "parallel.worker.op",
            "exit",
            match={"shard": 0, "op": "nm_batch"},
        )
        engine = ParallelNMEngine(dataset, grid, config, jobs=2)
        try:
            with pytest.raises(WorkerCrashError, match="shard worker 0 died"):
                engine.nm_batch(patterns)
            # The crash closed the engine: no half-dead evaluations later.
            with pytest.raises(RuntimeError, match="closed"):
                engine.nm_batch(patterns)
            assert glob.glob("/dev/shm/repro-shm-*") == []
        finally:
            engine.close()  # idempotent no-op after the auto-close

    def test_worker_op_error_keeps_engine_usable(self, scenario):
        # A *reported* error (worker alive, op failed) must not tear the
        # engine down -- only pipe death is fatal.
        dataset, grid, config = scenario
        patterns = _patterns(dataset, grid, config)
        faults.arm(
            "parallel.worker.op",
            "raise",
            match={"shard": 0, "op": "nm_batch"},
        )
        with ParallelNMEngine(dataset, grid, config, jobs=2) as engine:
            with pytest.raises(RuntimeError, match="FaultInjected"):
                engine.nm_batch(patterns)
            # Fault was count=1: the next call goes through and agrees
            # with the serial engine.
            serial = NMEngine(dataset, grid, config)
            np.testing.assert_allclose(
                engine.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
            )

    def test_unmatched_fault_does_not_fire(self, scenario):
        dataset, grid, config = scenario
        patterns = _patterns(dataset, grid, config)
        faults.arm("parallel.worker.op", "exit", match={"shard": 99})
        with ParallelNMEngine(dataset, grid, config, jobs=2) as engine:
            serial = NMEngine(dataset, grid, config)
            np.testing.assert_allclose(
                engine.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
            )


class TestCrashDuringStartup:
    def test_hard_crash_during_startup_cleans_shm(self, scenario):
        dataset, grid, config = scenario
        faults.arm("parallel.worker.start", "exit", match={"shard": 1})
        with pytest.raises(WorkerCrashError):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_reported_startup_failure_carries_traceback(self, scenario):
        dataset, grid, config = scenario
        faults.arm("parallel.worker.start", "raise", match={"shard": 0})
        with pytest.raises(RuntimeError, match="FaultInjected"):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_sigkill_during_startup_cleans_shm(self, scenario):
        dataset, grid, config = scenario
        faults.arm("parallel.worker.start", "sigkill", match={"shard": 0})
        with pytest.raises(WorkerCrashError):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []


class TestCrashDuringHandoff:
    """The export/release window: worker-created segments are in flight."""

    def test_sigkill_between_export_and_release(self, scenario, tmp_path):
        # The worker exports its index through segments *it* created, then
        # dies before the release round-trip -- the parent must reclaim
        # the orphaned segments by name.
        dataset, grid, config = scenario
        config = EngineConfig(
            delta=config.delta, min_prob=config.min_prob, cache_dir=str(tmp_path)
        )
        faults.arm(
            "parallel.worker.op",
            "sigkill",
            match={"shard": 1, "op": "release_index"},
        )
        with pytest.raises(WorkerCrashError):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_crash_during_export(self, scenario, tmp_path):
        dataset, grid, config = scenario
        config = EngineConfig(
            delta=config.delta, min_prob=config.min_prob, cache_dir=str(tmp_path)
        )
        faults.arm(
            "parallel.worker.op",
            "exit",
            match={"shard": 0, "op": "export_index"},
        )
        with pytest.raises(WorkerCrashError):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_parent_merge_failure_reclaims_worker_segments(self, scenario, tmp_path):
        # The parent dies between export and release: worker segments are
        # reclaimed by name in the finally, workers tolerate the
        # double-unlink on close.
        dataset, grid, config = scenario
        config = EngineConfig(
            delta=config.delta, min_prob=config.min_prob, cache_dir=str(tmp_path)
        )
        faults.arm("parallel.parent.merge", "raise")
        with pytest.raises(faults.FaultInjected):
            ParallelNMEngine(dataset, grid, config, jobs=2)
        assert glob.glob("/dev/shm/repro-shm-*") == []
        # The cache write never happened: no file, and no torn temp file.
        assert list(tmp_path.glob("*.npz")) == []
        assert list(tmp_path.glob("*.tmp")) == []


class TestCloseSemantics:
    def test_close_is_idempotent_after_crash(self, scenario):
        dataset, grid, config = scenario
        patterns = _patterns(dataset, grid, config)
        faults.arm(
            "parallel.worker.op", "exit", match={"shard": 0, "op": "nm_batch"}
        )
        engine = ParallelNMEngine(dataset, grid, config, jobs=2)
        with pytest.raises(WorkerCrashError):
            engine.nm_batch(patterns)
        engine.close()
        engine.close()
        assert glob.glob("/dev/shm/repro-shm-*") == []
