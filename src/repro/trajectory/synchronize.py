"""Snapshot synchronisation of asynchronous location reports (section 3.2).

Mobile objects report their locations asynchronously; the server
superimposes a series of synchronisation points and interpolates each
object's state onto them.  Per the paper, at each snapshot every object gets
an *expected location* (from a prediction method, e.g. Eq. 1's dead
reckoning) and an error distribution.

:func:`synchronize_reports` implements the paper's Eq. 1 scheme: between two
reports the expected location at time ``t`` is extrapolated from the last
report's position and velocity, and the sigma is the reporting scheme's
``U / c``.  A linear-interpolation mode is also provided for offline
processing where future reports are available (it produces strictly better
estimates and is what one would use to prepare a historical mining data
set).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trajectory.trajectory import UncertainTrajectory


@dataclass(frozen=True, slots=True)
class LocationReport:
    """One asynchronous location report from a mobile object."""

    time: float
    x: float
    y: float


class InterpolationMode(enum.Enum):
    """How snapshot estimates are derived from the surrounding reports."""

    #: Eq. 1 dead reckoning: last report's position plus velocity * elapsed.
    DEAD_RECKONING = "dead_reckoning"
    #: Linear interpolation between the surrounding reports (offline mode).
    LINEAR = "linear"


def synchronize_reports(
    reports: Sequence[LocationReport],
    snapshot_times: Sequence[float] | np.ndarray,
    sigma: float,
    object_id: str = "",
    mode: InterpolationMode = InterpolationMode.DEAD_RECKONING,
) -> UncertainTrajectory:
    """Interpolate asynchronous ``reports`` onto synchronous ``snapshot_times``.

    Parameters
    ----------
    reports:
        Location reports sorted by (or sortable to) increasing time; at
        least two are required so a velocity can be formed.
    snapshot_times:
        The synchronisation points, strictly increasing, all within or after
        the reported time range (dead reckoning can extrapolate past the
        last report; no snapshot may precede the first report).
    sigma:
        Standard deviation assigned to every interpolated snapshot -- the
        reporting scheme's ``U / c``.
    mode:
        Dead reckoning (Eq. 1, the paper's scheme) or linear interpolation.

    Returns
    -------
    UncertainTrajectory
        One snapshot per entry of ``snapshot_times``.
    """
    if len(reports) < 2:
        raise ValueError("need at least two reports to synchronise")
    if sigma <= 0:
        raise ValueError("sigma must be positive")

    ordered = sorted(reports, key=lambda r: r.time)
    times = [r.time for r in ordered]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ValueError("report times must be strictly increasing")

    snap = np.asarray(snapshot_times, dtype=float)
    if snap.ndim != 1 or len(snap) == 0:
        raise ValueError("snapshot_times must be a non-empty 1-D sequence")
    if np.any(np.diff(snap) <= 0):
        raise ValueError("snapshot_times must be strictly increasing")
    if snap[0] < times[0]:
        raise ValueError("snapshots cannot precede the first report")
    if mode is InterpolationMode.LINEAR and snap[-1] > times[-1]:
        raise ValueError("linear interpolation cannot extrapolate past the last report")

    positions = np.array([[r.x, r.y] for r in ordered])
    means = _estimate_many(snap, np.asarray(times), positions, mode)

    dt = float(snap[1] - snap[0]) if len(snap) > 1 else 1.0
    return UncertainTrajectory(
        means, sigma, object_id=object_id, start_time=float(snap[0]), dt=dt
    )


def _estimate_many(
    snap: np.ndarray,
    times: np.ndarray,
    positions: np.ndarray,
    mode: InterpolationMode,
) -> np.ndarray:
    """Expected locations at every snapshot time, vectorised.

    One ``np.searchsorted`` finds the last report at or before each
    snapshot; both modes then run as pure array arithmetic.  Equivalent to
    calling :func:`_estimate_at` per snapshot -- the scalar version is kept
    as the tested reference implementation.
    """
    idx = np.searchsorted(times, snap, side="right") - 1
    if np.any(idx < 0):
        raise ValueError(f"time {snap[int(np.argmin(idx))]} precedes first report")

    if mode is InterpolationMode.LINEAR:
        nxt = np.minimum(idx + 1, len(times) - 1)
        span = times[nxt] - times[idx]
        # w = 0 both when the snapshot hits a report exactly and when idx is
        # the last report (span 0) -- matching the scalar early returns.
        w = np.where(span > 0, (snap - times[idx]) / np.where(span > 0, span, 1.0), 0.0)
        return (1.0 - w)[:, None] * positions[idx] + w[:, None] * positions[nxt]

    # Dead reckoning (Eq. 1): velocity from the pair (vel_idx - 1, vel_idx)
    # straddling each snapshot; the first interval reuses the (0, 1) pair.
    vel_idx = np.maximum(idx, 1)
    v = (positions[vel_idx] - positions[vel_idx - 1]) / (
        times[vel_idx] - times[vel_idx - 1]
    )[:, None]
    return positions[idx] + v * (snap - times[idx])[:, None]


def _estimate_at(
    t: float, times: list[float], positions: np.ndarray, mode: InterpolationMode
) -> np.ndarray:
    """Expected location at time ``t`` (scalar reference for the tests)."""
    # Index of the last report at or before t (>= 0 by the caller's checks).
    idx = bisect.bisect_right(times, t) - 1
    if idx < 0:
        raise ValueError(f"time {t} precedes first report")

    if mode is InterpolationMode.LINEAR:
        if times[idx] == t or idx == len(times) - 1:
            return positions[idx].copy()
        span = times[idx + 1] - times[idx]
        w = (t - times[idx]) / span
        return (1.0 - w) * positions[idx] + w * positions[idx + 1]

    # Dead reckoning (Eq. 1): velocity from the report pair straddling idx.
    if idx == 0:
        v = (positions[1] - positions[0]) / (times[1] - times[0])
        anchor_t, anchor_p = times[0], positions[0]
    else:
        v = (positions[idx] - positions[idx - 1]) / (times[idx] - times[idx - 1])
        anchor_t, anchor_p = times[idx], positions[idx]
    return anchor_p + v * (t - anchor_t)
