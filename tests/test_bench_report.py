"""Bench report plumbing: history entries, host metadata, section merges.

Only the JSON bookkeeping is tested here -- the timed sections themselves
are exercised by ``repro bench`` runs, not unit tests.
"""

import json

from repro import bench


class TestHostFingerprint:
    def test_fields(self):
        host = bench._host_fingerprint()
        assert set(host) == {"cpu_count", "platform", "python"}
        assert host["cpu_count"] >= 1
        assert host["python"].count(".") == 2

    def test_history_entries_carry_host(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        bench._write_report(output, {"candidate_eval": {"speedup": 2.0}})
        data = json.loads(output.read_text())
        (entry,) = data["history"]
        assert entry["host"] == bench._host_fingerprint()
        assert entry["report"]["candidate_eval"]["speedup"] == 2.0

    def test_cross_host_comparison_warns(self, tmp_path, capsys):
        output = tmp_path / "BENCH_engine.json"
        bench._write_report(output, {"a": 1})
        assert "warning" not in capsys.readouterr().out

        # Same host appends silently.
        bench._write_report(output, {"a": 2})
        assert "warning" not in capsys.readouterr().out

        # Rewrite the newest entry as if it came from another machine.
        data = json.loads(output.read_text())
        data["history"][-1]["host"] = {
            "cpu_count": 256,
            "platform": "somewhere-else",
            "python": "3.11.7",
        }
        output.write_text(json.dumps(data))
        bench._write_report(output, {"a": 3})
        out = capsys.readouterr().out
        assert "warning" in out and "different host" in out
        assert len(json.loads(output.read_text())["history"]) == 3

    def test_entries_without_host_stay_valid(self, tmp_path, capsys):
        # Pre-metadata history entries must neither warn nor break.
        output = tmp_path / "BENCH_engine.json"
        output.write_text(
            json.dumps(
                {"a": 0, "history": [{"git_sha": "abc", "report": {"a": 0}}]}
            )
        )
        bench._write_report(output, {"a": 1})
        assert "warning" not in capsys.readouterr().out


class TestExistingSections:
    def test_merge_preserves_other_sections(self, tmp_path):
        output = tmp_path / "BENCH_engine.json"
        bench._write_report(output, {"candidate_eval": {"speedup": 2.0}})
        existing = bench._existing_sections(output)
        assert "candidate_eval" in existing
        assert "history" not in existing

    def test_missing_or_corrupt_file_is_empty(self, tmp_path):
        assert bench._existing_sections(tmp_path / "nope.json") == {}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert bench._existing_sections(bad) == {}
