"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module tests with randomised checks of the
properties the algorithms *rely* on, generated over small random datasets:

* engine == scalar reference (already covered per-module; here the
  singular and extension fast paths are cross-checked on random instances);
* min-max property at the dataset level through the engine;
* miner invariance under trajectory permutation;
* gap-pattern evaluation equals explicit enumeration over alignments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.core.wildcards import Gap, GapPattern, nm_gap_pattern_trajectory
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

GRID = Grid(BoundingBox(-0.2, -0.2, 1.2, 1.2), nx=7, ny=7)


def random_engine(seed, n_traj=4, min_len=5, max_len=12):
    rng = np.random.default_rng(seed)
    trajectories = []
    for _ in range(n_traj):
        n = int(rng.integers(min_len, max_len + 1))
        start = rng.uniform(0.1, 0.9, 2)
        steps = rng.normal(0.0, 0.08, (n, 2))
        trajectories.append(
            UncertainTrajectory(start + np.cumsum(steps, axis=0), rng.uniform(0.05, 0.15))
        )
    dataset = TrajectoryDataset(trajectories)
    return NMEngine(dataset, GRID, EngineConfig(delta=0.15, min_prob=1e-5))


cells = st.integers(min_value=0, max_value=GRID.n_cells - 1)
seeds = st.integers(min_value=0, max_value=10_000)


class TestEngineFastPaths:
    @settings(max_examples=25, deadline=None)
    @given(seeds, cells)
    def test_singular_table_agrees_with_nm(self, seed, cell):
        engine = random_engine(seed)
        table = engine.singular_nm_table()
        if cell in table:
            assert table[cell] == pytest.approx(
                engine.nm(TrajectoryPattern((cell,))), abs=1e-9
            )

    @settings(max_examples=20, deadline=None)
    @given(seeds, st.lists(cells, min_size=1, max_size=3), cells)
    def test_extension_table_agrees_with_nm(self, seed, base_cells, ext):
        engine = random_engine(seed)
        base = TrajectoryPattern(tuple(base_cells))
        nm_table, match_table = engine.extend_right_tables(base)
        if ext in nm_table:
            extended = TrajectoryPattern(base.cells + (ext,))
            assert nm_table[ext] == pytest.approx(engine.nm(extended), abs=1e-9)
            assert match_table[ext] == pytest.approx(
                engine.match(extended), rel=1e-9, abs=1e-300
            )


class TestMinMaxThroughEngine:
    @settings(max_examples=25, deadline=None)
    @given(
        seeds,
        st.lists(cells, min_size=1, max_size=3),
        st.lists(cells, min_size=1, max_size=3),
    )
    def test_minmax_property(self, seed, left_cells, right_cells):
        engine = random_engine(seed)
        left = TrajectoryPattern(tuple(left_cells))
        right = TrajectoryPattern(tuple(right_cells))
        combined = left.concat(right)
        nm_l, nm_r, nm_c = engine.nm(left), engine.nm(right), engine.nm(combined)
        weighted = (len(left) * nm_l + len(right) * nm_r) / len(combined)
        assert nm_c <= weighted + 1e-9
        assert weighted <= max(nm_l, nm_r) + 1e-9


class TestMinerInvariances:
    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_permutation_invariance(self, seed):
        """NM sums over trajectories, so trajectory order cannot matter."""
        engine = random_engine(seed)
        shuffled = engine.dataset.shuffled(np.random.default_rng(seed + 1))
        engine2 = NMEngine(shuffled, GRID, engine.config)
        a = TrajPatternMiner(engine, k=4, max_length=3).mine()
        b = TrajPatternMiner(engine2, k=4, max_length=3).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]
        assert a.nm_values == pytest.approx(b.nm_values, abs=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=6))
    def test_topk_prefix_consistency(self, seed, k):
        """The top-k list is a prefix of the top-(k+2) list's candidates?
        Not in general (omega differs), but the top-1 pattern must agree."""
        engine = random_engine(seed)
        small = TrajPatternMiner(engine, k=k, max_length=3).mine()
        large = TrajPatternMiner(engine, k=k + 2, max_length=3).mine()
        assert small.patterns[0].cells == large.patterns[0].cells

    @settings(max_examples=6, deadline=None)
    @given(seeds)
    def test_duplicated_dataset_preserves_ranking(self, seed):
        """Duplicating every trajectory doubles every NM, preserving the
        mined ranking."""
        engine = random_engine(seed)
        doubled = TrajectoryDataset(
            list(engine.dataset.trajectories) * 2
        )
        engine2 = NMEngine(doubled, GRID, engine.config)
        a = TrajPatternMiner(engine, k=4, max_length=2).mine()
        b = TrajPatternMiner(engine2, k=4, max_length=2).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]
        assert b.nm_values == pytest.approx(
            [2 * v for v in a.nm_values], abs=1e-9
        )


class TestGapPatternEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        seeds,
        st.lists(cells, min_size=1, max_size=2),
        st.lists(cells, min_size=1, max_size=2),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=2),
    )
    def test_gap_equals_best_fixed_alignment(
        self, seed, left_cells, right_cells, gap_min, gap_extra
    ):
        engine = random_engine(seed)
        gap_max = gap_min + gap_extra
        pattern = GapPattern(
            (TrajectoryPattern(tuple(left_cells)), TrajectoryPattern(tuple(right_cells))),
            (Gap(gap_min, gap_max),),
        )
        for traj_index in range(len(engine.dataset)):
            floor = engine.floor_log_prob
            best = -np.inf
            for g in range(gap_min, gap_max + 1):
                fixed = TrajectoryPattern(
                    tuple(left_cells) + (WILDCARD,) * g + tuple(right_cells)
                )
                found = engine.best_window(fixed, traj_index)
                if found is not None:
                    best = max(best, found[1])
            expected = best if best > -np.inf else floor
            got = nm_gap_pattern_trajectory(engine, pattern, traj_index)
            assert got == pytest.approx(expected, abs=1e-9)
