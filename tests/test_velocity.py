"""Unit tests for the velocity transform (section 3.2 formulas)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory
from repro.trajectory.velocity import to_velocity_dataset, to_velocity_trajectory


def make_traj(n, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    return UncertainTrajectory(rng.normal(size=(n, 2)), sigma, object_id="x")


class TestVelocityTransform:
    def test_means_are_differences(self):
        t = UncertainTrajectory([[0, 0], [1, 2], [3, 3]], 0.1)
        v = to_velocity_trajectory(t)
        assert np.allclose(v.means, [[1, 2], [2, 1]])

    def test_length_shrinks_by_one(self):
        v = to_velocity_trajectory(make_traj(7))
        assert len(v) == 6

    def test_sigma_formula_independent(self):
        t = UncertainTrajectory([[0, 0], [1, 1], [2, 2]], [0.3, 0.4, 0.5])
        v = to_velocity_trajectory(t)
        assert v.sigmas[0] == pytest.approx(np.hypot(0.3, 0.4))
        assert v.sigmas[1] == pytest.approx(np.hypot(0.4, 0.5))

    def test_sigma_formula_correlated(self):
        t = UncertainTrajectory([[0, 0], [1, 1]], [0.3, 0.4])
        v = to_velocity_trajectory(t, rho=0.5)
        expected = np.sqrt(0.09 + 0.16 - 2 * 0.5 * 0.12)
        assert v.sigmas[0] == pytest.approx(expected)

    def test_full_correlation_stays_positive(self):
        t = UncertainTrajectory([[0, 0], [1, 1]], [0.3, 0.3])
        v = to_velocity_trajectory(t, rho=1.0)
        assert v.sigmas[0] > 0

    def test_rho_out_of_range(self):
        with pytest.raises(ValueError):
            to_velocity_trajectory(make_traj(3), rho=1.5)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="two location snapshots"):
            to_velocity_trajectory(UncertainTrajectory([[0, 0]], 0.1))

    def test_metadata_preserved(self):
        v = to_velocity_trajectory(make_traj(4))
        assert v.object_id == "x"

    def test_monte_carlo_velocity_distribution(self):
        """The transformed sigma matches the empirical spread of sampled velocities."""
        t = UncertainTrajectory(np.zeros((2, 2)), [0.2, 0.3])
        v = to_velocity_trajectory(t)
        rng = np.random.default_rng(1)
        samples = np.array(
            [np.diff(t.sample_true_path(rng), axis=0)[0] for _ in range(20_000)]
        )
        assert samples.std(axis=0) == pytest.approx([v.sigmas[0]] * 2, rel=0.05)

    @given(st.integers(min_value=2, max_value=30))
    def test_velocities_telescope_back(self, n):
        t = make_traj(n, seed=n)
        v = to_velocity_trajectory(t)
        reconstructed = t.means[0] + np.concatenate(
            [[np.zeros(2)], np.cumsum(v.means, axis=0)]
        )
        assert np.allclose(reconstructed, t.means)


class TestVelocityDataset:
    def test_converts_all(self):
        ds = TrajectoryDataset([make_traj(5, seed=i) for i in range(3)])
        vds = to_velocity_dataset(ds)
        assert len(vds) == 3
        assert all(len(t) == 4 for t in vds)
        assert vds.metadata["kind"] == "velocity"

    def test_drops_short_and_reports(self):
        ds = TrajectoryDataset(
            [make_traj(5), UncertainTrajectory([[0, 0]], 0.1)]
        )
        vds = to_velocity_dataset(ds)
        assert len(vds) == 1
        assert vds.metadata["dropped_short_trajectories"] == 1
