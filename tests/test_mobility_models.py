"""Tests for the motion-prediction models (LM, LKF, RMF)."""

import numpy as np
import pytest

from repro.mobility.models import (
    KalmanModel,
    LinearModel,
    RecursiveMotionModel,
    make_model,
)


def feed(model, positions, times=None):
    times = times if times is not None else range(len(positions))
    for t, pos in zip(times, positions):
        model.observe(float(t), np.asarray(pos, dtype=float))
    return model


class TestLinearModel:
    def test_before_any_report(self):
        with pytest.raises(RuntimeError):
            LinearModel().predict(0.0)

    def test_single_report_predicts_static(self):
        model = feed(LinearModel(), [[1.0, 2.0]])
        assert np.allclose(model.predict(5.0), [1.0, 2.0])

    def test_linear_extrapolation(self):
        model = feed(LinearModel(), [[0, 0], [1, 2]])
        assert np.allclose(model.predict(2.0), [2.0, 4.0])
        assert np.allclose(model.predict(3.0), [3.0, 6.0])

    def test_velocity_from_latest_pair(self):
        model = feed(LinearModel(), [[0, 0], [1, 0], [1, 1]])
        assert np.allclose(model.predict(3.0), [1.0, 2.0])

    def test_non_monotone_time_rejected(self):
        model = feed(LinearModel(), [[0, 0]])
        with pytest.raises(ValueError):
            model.observe(0.0, np.zeros(2))

    def test_clone_is_fresh(self):
        model = feed(LinearModel(), [[0, 0], [1, 1]])
        clone = model.clone()
        with pytest.raises(RuntimeError):
            clone.predict(1.0)

    def test_exact_on_linear_motion(self):
        positions = [[0.1 * t, -0.05 * t] for t in range(5)]
        model = feed(LinearModel(), positions)
        assert np.allclose(model.predict(10.0), [1.0, -0.5])


class TestKalmanModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            KalmanModel(process_noise=0.0)
        with pytest.raises(ValueError):
            KalmanModel(measurement_noise=-1.0)

    def test_before_any_report(self):
        with pytest.raises(RuntimeError):
            KalmanModel().predict(0.0)

    def test_first_report_anchors(self):
        model = feed(KalmanModel(), [[2.0, 3.0]])
        assert np.allclose(model.predict(1.0), [2.0, 3.0])

    def test_converges_on_linear_motion(self):
        positions = [[0.1 * t, 0.2 * t] for t in range(20)]
        model = feed(KalmanModel(), positions)
        predicted = model.predict(21.0)
        assert predicted == pytest.approx([2.1, 4.2], abs=0.05)

    def test_velocity_estimated(self):
        positions = [[0.5 * t, 0.0] for t in range(10)]
        model = feed(KalmanModel(), positions)
        assert model.predict(10.0)[0] - model.predict(9.0)[0] == pytest.approx(
            0.5, abs=0.05
        )

    def test_smoother_than_raw_reports_under_noise(self):
        rng = np.random.default_rng(0)
        true = np.array([[0.1 * t, 0.0] for t in range(30)])
        noisy = true + rng.normal(0, 0.05, true.shape)
        model = feed(KalmanModel(process_noise=1e-4, measurement_noise=0.05), noisy)
        # The filtered prediction should beat the last noisy report as an
        # estimate of the true position.
        err_model = abs(model.predict(29.0)[0] - true[29, 0])
        err_raw = abs(noisy[29, 0] - true[29, 0])
        assert err_model <= err_raw + 0.02

    def test_non_monotone_time_rejected(self):
        model = feed(KalmanModel(), [[0, 0]])
        with pytest.raises(ValueError):
            model.observe(0.0, np.zeros(2))


class TestRecursiveMotionModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecursiveMotionModel(retrospect=1)
        with pytest.raises(ValueError):
            RecursiveMotionModel(retrospect=3, window=3)
        with pytest.raises(ValueError):
            RecursiveMotionModel(max_speed=0.0)

    def test_before_any_report(self):
        with pytest.raises(RuntimeError):
            RecursiveMotionModel().predict(0.0)

    def test_falls_back_to_linear_early(self):
        model = feed(RecursiveMotionModel(), [[0, 0], [1, 1]])
        assert np.allclose(model.predict(2.0), [2.0, 2.0])

    def test_exact_on_linear_motion(self):
        positions = [[0.05 * t, 0.1 * t] for t in range(10)]
        model = feed(RecursiveMotionModel(), positions)
        assert model.predict(11.0) == pytest.approx([0.55, 1.1], abs=0.01)

    def test_captures_constant_acceleration(self):
        # x = 0.01 t^2 satisfies x_t = 2x_{t-1} - x_{t-2} + const; RMF with
        # retrospect >= 3 can express it where pure linear cannot.
        positions = [[0.01 * t * t, 0.0] for t in range(12)]
        rmf = feed(RecursiveMotionModel(retrospect=3, window=10), positions)
        lm = feed(LinearModel(), positions)
        true_next = 0.01 * 12 * 12
        assert abs(rmf.predict(12.0)[0] - true_next) < abs(
            lm.predict(12.0)[0] - true_next
        )

    def test_divergence_guard(self):
        # A wildly inconsistent history must not produce an explosive
        # prediction thanks to the max_speed fallback.
        rng = np.random.default_rng(1)
        positions = rng.uniform(-1, 1, (10, 2))
        model = feed(RecursiveMotionModel(max_speed=0.5), positions)
        prediction = model.predict(15.0)
        assert np.all(np.isfinite(prediction))
        assert np.hypot(*(prediction - positions[-1])) < 10.0

    def test_gap_filling_keeps_window(self):
        model = feed(RecursiveMotionModel(window=5), [[0, 0], [1, 0]])
        model.observe(6.0, np.array([6.0, 0.0]))  # 4-tick gap gets filled
        assert len(model._history) == 5


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lm", LinearModel), ("lkf", KalmanModel), ("rmf", RecursiveMotionModel)],
    )
    def test_known_models(self, name, cls):
        assert isinstance(make_model(name), cls)
        assert isinstance(make_model(name.upper()), cls)

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            make_model("gpt")
