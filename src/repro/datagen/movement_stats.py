"""Movement statistics: extraction from traces and the ZebraNet-like defaults.

The paper builds its synthetic herd data by first *extracting* per-tick
moving distances and directions from the real ZebraNet traces and then
re-sampling them.  :class:`MovementStats` plays both roles:

* :meth:`MovementStats.from_paths` extracts the empirical step-length
  distribution and heading-persistence from any set of ground-truth paths
  (so a user with real traces can reproduce the paper's pipeline exactly);
* :meth:`MovementStats.zebra_like` provides synthesised defaults matching
  the published character of zebra movement -- a grazing/trekking mixture
  (mostly short steps, occasional long directed moves) with persistent
  headings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mobility.objects import GroundTruthPath


@dataclass(frozen=True)
class MovementStats:
    """Samplable per-tick movement statistics.

    Parameters
    ----------
    step_lengths:
        Empirical pool of per-tick distances, resampled uniformly.
    turn_sigma:
        Standard deviation (radians) of the per-tick heading change; small
        values give persistent, directed movement.
    """

    step_lengths: np.ndarray
    turn_sigma: float

    def __post_init__(self) -> None:
        steps = np.array(self.step_lengths, dtype=float, copy=True)
        if steps.ndim != 1 or len(steps) == 0:
            raise ValueError("step_lengths must be a non-empty 1-D array")
        if np.any(steps < 0):
            raise ValueError("step lengths must be non-negative")
        steps.setflags(write=False)
        object.__setattr__(self, "step_lengths", steps)
        if self.turn_sigma < 0:
            raise ValueError("turn_sigma must be non-negative")

    def sample_distance(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Resample ``n`` per-tick distances from the empirical pool."""
        return rng.choice(self.step_lengths, size=n, replace=True)

    def next_heading(
        self, heading: np.ndarray | float, rng: np.random.Generator
    ) -> np.ndarray | float:
        """Persistent-heading update: previous heading plus Gaussian turn."""
        heading = np.asarray(heading, dtype=float)
        turned = heading + rng.normal(scale=self.turn_sigma, size=heading.shape)
        return np.mod(turned, 2.0 * np.pi)

    @property
    def mean_step(self) -> float:
        return float(self.step_lengths.mean())

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_paths(
        cls, paths: Sequence[GroundTruthPath], max_pool: int = 10_000
    ) -> "MovementStats":
        """Extract statistics from real traces (the paper's first step).

        The step pool is the concatenation of all per-tick displacement
        magnitudes (downsampled to ``max_pool``); the turn sigma is the
        circular standard deviation of consecutive heading changes.
        """
        if not paths:
            raise ValueError("need at least one path")
        steps: list[np.ndarray] = []
        turns: list[np.ndarray] = []
        for path in paths:
            v = path.velocities()
            mag = np.hypot(v[:, 0], v[:, 1])
            steps.append(mag)
            moving = mag > 0
            if moving.sum() >= 2:
                headings = np.arctan2(v[moving, 1], v[moving, 0])
                d = np.diff(headings)
                # Wrap heading changes to (-pi, pi].
                d = np.mod(d + np.pi, 2 * np.pi) - np.pi
                turns.append(d)
        pool = np.concatenate(steps)
        if len(pool) > max_pool:
            stride = len(pool) // max_pool + 1
            pool = pool[::stride]
        turn_sigma = float(np.std(np.concatenate(turns))) if turns else 0.0
        return cls(pool, turn_sigma)

    @classmethod
    def zebra_like(cls, seed: int = 20040601, pool_size: int = 2000) -> "MovementStats":
        """Synthesised ZebraNet-like defaults (documented substitution).

        Grazing/trekking mixture: ~85% short grazing steps (lognormal,
        median ~0.003 space units/tick) and ~15% long trek steps (median
        ~0.02), with moderately persistent headings.  The seed fixes the
        step pool so runs are reproducible.
        """
        rng = np.random.default_rng(seed)
        n_trek = int(pool_size * 0.15)
        graze = rng.lognormal(mean=np.log(0.003), sigma=0.6, size=pool_size - n_trek)
        trek = rng.lognormal(mean=np.log(0.02), sigma=0.4, size=n_trek)
        pool = np.concatenate([graze, trek])
        rng.shuffle(pool)
        return cls(pool, turn_sigma=0.35)
