"""Load generator for the serving layer (``repro loadgen``).

Two modes sharing one report shape:

* **closed loop** (default): ``concurrency`` workers, each with its own
  connection, each holding exactly one request in flight -- measures the
  server's throughput at a fixed concurrency level, which is what the
  micro-batching benchmark compares (batched vs per-request evaluation at
  concurrency 32).
* **open loop** (``qps`` set): requests are *scheduled* at the target
  rate regardless of completions, pipelined round-robin over the worker
  connections -- the honest way to measure overload behaviour, because a
  closed loop self-throttles exactly when the server slows down
  (coordinated omission).  Under deliberate over-driving, the report
  separates explicit ``overloaded`` responses from completed work and the
  latency percentiles cover the *admitted* requests only.

The generator first issues ``describe`` and synthesizes requests from the
answer (active cells for ``score``, grid geometry for ``predict``), so it
needs nothing but the address.  All randomness is seeded -- two runs
against the same snapshot issue the same request stream.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs import tracing
from repro.serve import protocol


@dataclass
class LoadgenConfig:
    """What to send, where, and how hard.

    With ``trace=True`` (and a configured global tracer) the generator
    originates one trace: a ``loadgen.run`` root span, one
    ``client.request`` span per request, and the wire context attached to
    every request -- so the server's queue/batch/eval spans land in the
    *client's* trace and ``repro report`` renders the joined tree.
    """

    host: str = "127.0.0.1"
    port: int = 0
    requests: int = 200
    concurrency: int = 8
    qps: float | None = None  # None = closed loop
    op: str = "score"  # "score", "predict" or "mixed"
    measure: str = "nm"
    patterns_per_request: int = 1
    pattern_length: int = 3
    recent_points: int = 6
    timeout_ms: float | None = None
    seed: int = 0
    drain_timeout_s: float = 30.0
    trace: bool = False
    reconnect_backoff_s: float = 0.25
    reconnect_cap_s: float = 5.0
    reconnect_attempts: int = 5

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be at least 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if self.qps is not None and self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.op not in ("score", "predict", "mixed"):
            raise ValueError("op must be score, predict or mixed")


@dataclass
class _Tally:
    """Mutable counters shared by the workers.

    ``shed_reasons`` / ``degraded_reasons`` break the coarse counters
    down by the server's explicit reason (``queue_full`` / ``deadline`` /
    ``deadline_expired``), which is what the SLO availability math wants.
    ``records`` (per-request outcome + span id; populated only when
    tracing) is how client-side observations join against the server
    trace.
    """

    completed: int = 0
    ok: int = 0
    overloaded: int = 0
    degraded: int = 0
    errors: int = 0
    reconnects: int = 0
    latencies_ns: list[int] = field(default_factory=list)
    shed_reasons: dict[str, int] = field(default_factory=dict)
    degraded_reasons: dict[str, int] = field(default_factory=dict)
    records: list[dict] | None = None

    def record(
        self,
        response: dict,
        latency_ns: int,
        op: str | None = None,
        span=None,
    ) -> None:
        self.completed += 1
        status = "ok"
        if response.get("ok"):
            self.ok += 1
            if response.get("degraded"):
                self.degraded += 1
                status = "degraded"
                reason = str(response.get("reason", "unknown"))
                self.degraded_reasons[reason] = self.degraded_reasons.get(reason, 0) + 1
            self.latencies_ns.append(latency_ns)
        elif response.get("error") == "overloaded":
            self.overloaded += 1
            status = "overloaded"
            reason = str(response.get("reason", "unknown"))
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        else:
            self.errors += 1
            status = str(response.get("error", "error"))
        if span is not None:
            span.finish(status=status)
        if self.records is not None:
            entry: dict = {
                "id": response.get("id"),
                "op": op,
                "status": status,
                "latency_ms": latency_ns / 1e6,
            }
            if span is not None:
                entry["span"] = span.span_id
            self.records.append(entry)


async def _request_once(reader, writer, request: dict) -> dict:
    writer.write(protocol.encode(request))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    return protocol.decode_line(line)


async def _connect(config: "LoadgenConfig"):
    return await asyncio.open_connection(
        config.host, config.port, limit=protocol.MAX_LINE_BYTES
    )


async def _reconnect(config: "LoadgenConfig", tally: "_Tally"):
    """Re-establish one connection with capped exponential backoff.

    Returns the new ``(reader, writer)`` pair, or ``None`` after
    ``reconnect_attempts`` consecutive failures -- a restarting server
    is ridden out, a gone server is reported, not spun on forever.
    """
    backoff = config.reconnect_backoff_s
    for _ in range(config.reconnect_attempts):
        await asyncio.sleep(backoff)
        backoff = min(backoff * 2, config.reconnect_cap_s)
        try:
            pair = await _connect(config)
        except OSError:
            continue
        tally.reconnects += 1
        return pair
    return None


def _begin_request_span(request: dict, root_ctx) -> tuple[dict, Any]:
    """Start a client span for one request and attach its wire context.

    Returns a *copy* of the request -- the deterministic stream itself is
    never mutated, so traced and untraced runs send identical payloads
    (plus the ``trace`` field).
    """
    span = tracing.begin(
        "client.request", ctx=root_ctx, op=request["op"], req_id=request["id"]
    )
    traced = dict(request)
    traced["trace"] = span.context().to_wire()
    return traced, span


def _make_requests(config: LoadgenConfig, describe: dict) -> list[dict]:
    """The full (deterministic) request stream, ids assigned 0..n-1."""
    rng = np.random.default_rng(config.seed)
    cells = describe.get("sample_active_cells") or [0]
    grid = describe["grid"]
    sigma = float(describe.get("sigma_typical") or 0.01) or 0.01
    span_x = grid["max_x"] - grid["min_x"]
    span_y = grid["max_y"] - grid["min_y"]
    requests: list[dict] = []
    for i in range(config.requests):
        op = config.op
        if op == "mixed":
            op = "score" if i % 2 == 0 else "predict"
        if op == "score":
            request: dict[str, Any] = {
                "op": "score",
                "id": i,
                "measure": config.measure,
                "patterns": [
                    [int(c) for c in rng.choice(cells, size=config.pattern_length)]
                    for _ in range(config.patterns_per_request)
                ],
            }
        else:
            start = np.array(
                [
                    grid["min_x"] + rng.random() * span_x,
                    grid["min_y"] + rng.random() * span_y,
                ]
            )
            step = rng.normal(scale=2.0 * sigma, size=(config.recent_points, 2))
            recent = start + np.cumsum(step, axis=0)
            request = {
                "op": "predict",
                "id": i,
                "recent": [[float(x), float(y)] for x, y in recent],
                "sigma": sigma,
            }
        if config.timeout_ms is not None:
            request["timeout_ms"] = config.timeout_ms
        requests.append(request)
    return requests


async def _closed_loop(
    config: LoadgenConfig, requests: list[dict], root_ctx=None
) -> _Tally:
    tally = _Tally()
    if root_ctx is not None:
        tally.records = []
    queue: asyncio.Queue = asyncio.Queue()
    for request in requests:
        queue.put_nowait(request)

    async def worker() -> None:
        reader, writer = await _connect(config)
        try:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                span = None
                if root_ctx is not None:
                    request, span = _begin_request_span(request, root_ctx)
                t0 = time.monotonic_ns()
                while True:
                    try:
                        response = await _request_once(reader, writer, request)
                        break
                    except (ConnectionError, OSError):
                        # Lost mid-request: reconnect and resend (every
                        # loadgen op is idempotent).
                        pair = await _reconnect(config, tally)
                        if pair is None:
                            response = {
                                "ok": False,
                                "error": "connection_lost",
                                "id": request.get("id"),
                            }
                            break
                        reader, writer = pair
                tally.record(
                    response, time.monotonic_ns() - t0, op=request["op"], span=span
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    await asyncio.gather(*(worker() for _ in range(config.concurrency)))
    return tally


async def _open_loop(
    config: LoadgenConfig, requests: list[dict], root_ctx=None
) -> _Tally:
    """Fire at the target rate, pipelined; correlate responses by id."""
    tally = _Tally()
    if root_ctx is not None:
        tally.records = []
    connections = []
    for _ in range(config.concurrency):
        connections.append(await _connect(config))
    pending: dict[int, tuple[int, str, Any]] = {}  # id -> (send_ns, op, span)
    done = asyncio.Event()

    async def read_responses(reader) -> None:
        while tally.completed < len(requests):
            line = await reader.readline()
            if not line:
                return
            response = protocol.decode_line(line)
            entry = pending.pop(response.get("id"), None)
            if entry is None:
                continue
            sent_at, op, span = entry
            tally.record(response, time.monotonic_ns() - sent_at, op=op, span=span)
            if tally.completed == len(requests):
                done.set()
                return

    readers = [
        asyncio.get_running_loop().create_task(read_responses(reader))
        for reader, _ in connections
    ]
    interval = 1.0 / config.qps
    start = time.monotonic()
    for i, request in enumerate(requests):
        target = start + i * interval
        delay = target - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        index = i % len(connections)
        _, writer = connections[index]
        span = None
        if root_ctx is not None:
            request, span = _begin_request_span(request, root_ctx)
        pending[request["id"]] = (time.monotonic_ns(), request["op"], span)
        try:
            writer.write(protocol.encode(request))
            await writer.drain()
        except (ConnectionError, OSError):
            # The connection died; its in-flight responses are lost (the
            # drain pass below accounts for them).  Reconnect this slot
            # and resend the current request on the fresh connection.
            pair = await _reconnect(config, tally)
            if pair is None:
                continue
            connections[index] = pair
            readers.append(
                asyncio.get_running_loop().create_task(read_responses(pair[0]))
            )
            try:
                pair[1].write(protocol.encode(request))
                await pair[1].drain()
            except (ConnectionError, OSError):
                continue
    try:
        await asyncio.wait_for(done.wait(), timeout=config.drain_timeout_s)
    except asyncio.TimeoutError:
        pass
    for task in readers:
        task.cancel()
    await asyncio.gather(*readers, return_exceptions=True)
    # Requests the drain timeout abandoned still get their client span
    # closed -- an unanswered request is an observation, not a leak.
    for _, _, span in pending.values():
        if span is not None:
            span.finish(status="no_response")
    for _, writer in connections:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return tally


def _percentiles(latencies_ns: list[int]) -> dict:
    if not latencies_ns:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None, "mean_ms": None, "max_ms": None}
    arr = np.asarray(latencies_ns, dtype=float) / 1e6
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
        "max_ms": float(arr.max()),
    }


async def run_loadgen(config: LoadgenConfig) -> dict:
    """Run the configured load against a live server; returns the report."""
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=protocol.MAX_LINE_BYTES
    )
    try:
        describe = await _request_once(reader, writer, {"op": "describe"})
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    if not describe.get("ok"):
        raise RuntimeError(f"describe failed: {describe}")

    requests = _make_requests(config, describe)
    root_span = None
    root_ctx = None
    if config.trace and tracing.get_tracer() is not None:
        root_span = tracing.begin(
            "loadgen.run",
            mode="closed" if config.qps is None else "open",
            op=config.op,
            requests=len(requests),
        )
        root_ctx = root_span.context()
    t0 = time.monotonic()
    if config.qps is None:
        tally = await _closed_loop(config, requests, root_ctx)
    else:
        tally = await _open_loop(config, requests, root_ctx)
    duration = time.monotonic() - t0
    if root_span is not None:
        root_span.finish(completed=tally.completed, ok=tally.ok)

    report = {
        "mode": "closed" if config.qps is None else "open",
        "op": config.op,
        "target_qps": config.qps,
        "concurrency": config.concurrency,
        "sent": len(requests),
        "completed": tally.completed,
        "ok": tally.ok,
        "overloaded": tally.overloaded,
        "degraded": tally.degraded,
        "errors": tally.errors,
        "reconnects": tally.reconnects,
        "duration_s": duration,
        "achieved_qps": tally.completed / duration if duration > 0 else 0.0,
        "latency": _percentiles(tally.latencies_ns),
        "shed_reasons": tally.shed_reasons,
        "degraded_reasons": tally.degraded_reasons,
        "server_version": describe.get("version"),
    }
    if root_ctx is not None:
        report["trace_id"] = root_ctx.trace_id
    if tally.records is not None:
        report["requests"] = tally.records
    return report
