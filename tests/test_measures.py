"""Unit and property tests for the measures of section 3.3.

These exercise the scalar reference implementation directly: Eq. 2 (match),
Eq. 3 (normalised match), Eq. 4 (window maximum), the dataset sums and --
most importantly -- the min-max property (Property 1), which is the
foundation of the whole TrajPattern algorithm.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measures import (
    match_pattern_dataset,
    match_pattern_trajectory,
    match_pattern_window,
    minmax_upper_bound,
    nm_pattern_dataset,
    nm_pattern_trajectory,
    nm_pattern_window,
    position_log_probs,
)
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

GRID = Grid(BoundingBox.unit(), nx=6, ny=6)
DELTA = 1 / 6  # one cell


def make_traj(cells, sigma=0.08, jitter=0.0, seed=0):
    """Trajectory whose means sit on the given cell centres (plus jitter)."""
    rng = np.random.default_rng(seed)
    means = GRID.cell_centers(list(cells)).astype(float).copy()
    if jitter:
        means = means + rng.normal(scale=jitter, size=means.shape)
    return UncertainTrajectory(means, sigma)


# Hypothesis strategies over the 6x6 grid.
cell_ids = st.integers(min_value=0, max_value=GRID.n_cells - 1)
patterns = st.lists(cell_ids, min_size=1, max_size=4).map(
    lambda c: TrajectoryPattern(tuple(c))
)
cell_paths = st.lists(cell_ids, min_size=4, max_size=10)


class TestWindowMeasures:
    def test_match_is_product_of_position_probs(self):
        pattern = TrajectoryPattern((0, 1, 2))
        window = make_traj([0, 1, 2])
        logs = position_log_probs(pattern, window, GRID, DELTA)
        assert match_pattern_window(pattern, window, GRID, DELTA) == pytest.approx(
            math.exp(logs.sum())
        )

    def test_nm_is_normalised_log(self):
        pattern = TrajectoryPattern((0, 1))
        window = make_traj([0, 1])
        m = match_pattern_window(pattern, window, GRID, DELTA)
        assert nm_pattern_window(pattern, window, GRID, DELTA) == pytest.approx(
            math.log(m) / 2
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nm_pattern_window(TrajectoryPattern((0,)), make_traj([0, 1]), GRID, DELTA)

    def test_perfect_position_beats_wrong_position(self):
        good = nm_pattern_window(TrajectoryPattern((0,)), make_traj([0]), GRID, DELTA)
        bad = nm_pattern_window(TrajectoryPattern((35,)), make_traj([0]), GRID, DELTA)
        assert good > bad

    def test_floor_applies(self):
        # Cell 35 is far from cell 0: probability below the floor.
        nm = nm_pattern_window(
            TrajectoryPattern((35,)), make_traj([0], sigma=0.01), GRID, DELTA,
            min_log_prob=-10.0,
        )
        assert nm == pytest.approx(-10.0)

    def test_wildcard_contributes_nothing(self):
        window = make_traj([0, 1, 2])
        with_wild = TrajectoryPattern((0, WILDCARD, 2))
        without = TrajectoryPattern((0, 2))
        logs_wild = position_log_probs(with_wild, window, GRID, DELTA)
        assert logs_wild[1] == 0.0
        # NM normalises by specified positions, so the wildcard is neutral.
        sub_window = UncertainTrajectory(
            window.means[[0, 2]], window.sigmas[[0, 2]]
        )
        assert nm_pattern_window(with_wild, window, GRID, DELTA) == pytest.approx(
            nm_pattern_window(without, sub_window, GRID, DELTA)
        )


class TestTrajectoryMeasures:
    def test_nm_takes_best_window(self):
        traj = make_traj([5, 0, 1, 2, 30])
        pattern = TrajectoryPattern((0, 1, 2))
        best = nm_pattern_window(pattern, traj.window(1, 3), GRID, DELTA)
        assert nm_pattern_trajectory(pattern, traj, GRID, DELTA) == pytest.approx(best)

    def test_short_trajectory_scores_floor(self):
        traj = make_traj([0])
        nm = nm_pattern_trajectory(
            TrajectoryPattern((0, 1)), traj, GRID, DELTA, min_log_prob=-9.0
        )
        assert nm == -9.0

    def test_match_short_trajectory(self):
        traj = make_traj([0])
        m = match_pattern_trajectory(
            TrajectoryPattern((0, 1)), traj, GRID, DELTA, min_log_prob=-9.0
        )
        assert m == pytest.approx(math.exp(-18.0))

    def test_dataset_sums(self):
        trajs = TrajectoryDataset([make_traj([0, 1, 2]), make_traj([2, 1, 0])])
        pattern = TrajectoryPattern((0, 1))
        total = nm_pattern_dataset(pattern, trajs, GRID, DELTA)
        parts = [nm_pattern_trajectory(pattern, t, GRID, DELTA) for t in trajs]
        assert total == pytest.approx(sum(parts))
        total_m = match_pattern_dataset(pattern, trajs, GRID, DELTA)
        parts_m = [match_pattern_trajectory(pattern, t, GRID, DELTA) for t in trajs]
        assert total_m == pytest.approx(sum(parts_m))


class TestAprioriOnMatch:
    """The match measure (not NM) obeys Apriori -- section 3.3."""

    @settings(max_examples=40, deadline=None)
    @given(patterns, cell_paths)
    def test_match_monotone_under_extension(self, pattern, path_cells):
        traj = make_traj(path_cells, jitter=0.03, seed=len(path_cells))
        extended = pattern.concat(TrajectoryPattern((7,)))
        m_small = match_pattern_trajectory(pattern, traj, GRID, DELTA)
        m_big = match_pattern_trajectory(extended, traj, GRID, DELTA)
        assert m_big <= m_small + 1e-12


class TestMinMaxProperty:
    """Property 1: the algorithmic foundation of the paper."""

    @settings(max_examples=60, deadline=None)
    @given(patterns, patterns, st.lists(cell_paths, min_size=1, max_size=3))
    def test_minmax_holds_on_dataset(self, left, right, paths):
        dataset = TrajectoryDataset(
            [make_traj(cells, jitter=0.02, seed=i) for i, cells in enumerate(paths)]
        )
        combined = left.concat(right)
        nm_l = nm_pattern_dataset(left, dataset, GRID, DELTA)
        nm_r = nm_pattern_dataset(right, dataset, GRID, DELTA)
        nm_c = nm_pattern_dataset(combined, dataset, GRID, DELTA)
        bound = minmax_upper_bound(nm_l, len(left), nm_r, len(right))
        assert nm_c <= bound + 1e-9
        assert bound <= max(nm_l, nm_r) + 1e-9

    def test_minmax_bound_arguments_validated(self):
        with pytest.raises(ValueError):
            minmax_upper_bound(-1.0, 0, -2.0, 1)

    def test_apriori_fails_for_nm(self):
        """NM deliberately violates Apriori: a super-pattern can outscore
        a sub-pattern (the reason the paper needs min-max at all)."""
        traj = make_traj([0, 1], sigma=0.05)
        dataset = TrajectoryDataset([traj])
        single = TrajectoryPattern((35,))  # far from the data
        pair = TrajectoryPattern((35, 1))  # adds a well-matching position
        nm_single = nm_pattern_dataset(single, dataset, GRID, DELTA)
        nm_pair = nm_pattern_dataset(pair, dataset, GRID, DELTA)
        assert nm_pair > nm_single  # super-pattern scores higher
