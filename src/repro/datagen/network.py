"""Road-network mobility generator ("similar to [9]").

The TPR-tree paper [9] generates workloads of objects moving with
piecewise-linear motion between destinations.  We reproduce that class of
motion with an explicit road network: a jittered grid graph whose nodes are
intersections; each object repeatedly picks a random destination node,
follows the shortest path at a per-leg speed, and picks a new destination
on arrival.  The result is piecewise-linear, network-constrained motion
with shared corridors -- the kind of data where trajectory patterns are
plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.mobility.objects import GroundTruthPath


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Network shape and fleet parameters."""

    grid_side: int = 6  # intersections per side (grid_side^2 nodes)
    jitter: float = 0.3  # node position jitter, fraction of spacing
    extent: float = 1.0  # network covers [0, extent]^2
    n_objects: int = 50
    n_ticks: int = 100
    speed_low: float = 0.015  # per-leg speed range (units per tick)
    speed_high: float = 0.035

    def __post_init__(self) -> None:
        if self.grid_side < 2:
            raise ValueError("grid_side must be at least 2")
        if not 0 <= self.jitter < 0.5:
            raise ValueError("jitter must be in [0, 0.5) to keep edges sane")
        if min(self.n_objects, self.n_ticks) < 1:
            raise ValueError("fleet dimensions must be positive")
        if not 0 < self.speed_low <= self.speed_high:
            raise ValueError("need 0 < speed_low <= speed_high")


class RoadNetworkGenerator:
    """Objects on shortest paths over a jittered grid road graph."""

    def __init__(self, config: RoadNetworkConfig = RoadNetworkConfig()) -> None:
        self.config = config

    def make_network(self, rng: np.random.Generator) -> nx.Graph:
        """Jittered grid graph with Euclidean edge weights and ``pos`` attrs."""
        cfg = self.config
        graph = nx.grid_2d_graph(cfg.grid_side, cfg.grid_side)
        spacing = cfg.extent / (cfg.grid_side - 1)
        pos = {}
        for node in graph.nodes:
            base = np.array(node, dtype=float) * spacing
            pos[node] = base + rng.uniform(-cfg.jitter, cfg.jitter, 2) * spacing
        nx.set_node_attributes(graph, pos, "pos")
        for u, v in graph.edges:
            graph.edges[u, v]["weight"] = float(np.hypot(*(pos[u] - pos[v])))
        return graph

    def generate_paths(self, rng: np.random.Generator) -> list[GroundTruthPath]:
        """One path per object; see the module docstring for the motion law."""
        cfg = self.config
        graph = self.make_network(rng)
        nodes = list(graph.nodes)
        pos = nx.get_node_attributes(graph, "pos")

        paths = []
        for i in range(cfg.n_objects):
            current = nodes[rng.integers(len(nodes))]
            speed = float(rng.uniform(cfg.speed_low, cfg.speed_high))
            waypoints: list[np.ndarray] = [pos[current]]
            # Build enough polyline to cover the requested ticks.
            needed = cfg.n_ticks * speed * 1.5 + 1e-9
            built = 0.0
            while built < needed:
                destination = nodes[rng.integers(len(nodes))]
                if destination == current:
                    continue
                route = nx.shortest_path(graph, current, destination, weight="weight")
                for node in route[1:]:
                    waypoints.append(pos[node])
                    built += float(
                        np.hypot(*(waypoints[-1] - waypoints[-2]))
                    )
                current = destination
            positions = _walk_polyline(np.asarray(waypoints), speed, cfg.n_ticks)
            paths.append(GroundTruthPath(positions, object_id=f"vehicle-{i}"))
        return paths


def _walk_polyline(waypoints: np.ndarray, speed: float, n_ticks: int) -> np.ndarray:
    """Positions at unit ticks along a polyline at constant speed."""
    seg = np.diff(waypoints, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    arcs = np.arange(n_ticks) * speed
    if arcs[-1] > cum[-1]:
        raise ValueError("polyline shorter than the requested walk")
    idx = np.clip(np.searchsorted(cum, arcs, side="right") - 1, 0, len(seg_len) - 1)
    denom = np.where(seg_len[idx] > 0, seg_len[idx], 1.0)
    w = (arcs - cum[idx]) / denom
    return waypoints[idx] + w[:, None] * seg[idx]
