"""Tests for snapshot-interval resampling (section 5's interval knob)."""

import numpy as np
import pytest

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.resample import decimate, refine, resample_dataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def traj():
    means = np.column_stack([np.arange(9, dtype=float), np.zeros(9)])
    sigmas = np.linspace(0.1, 0.5, 9)
    return UncertainTrajectory(means, sigmas, object_id="r", dt=2.0)


class TestDecimate:
    def test_identity(self, traj):
        assert decimate(traj, 1) is traj

    def test_every_second(self, traj):
        out = decimate(traj, 2)
        assert len(out) == 5
        assert np.allclose(out.means[:, 0], [0, 2, 4, 6, 8])
        assert np.allclose(out.sigmas, traj.sigmas[::2])
        assert out.dt == 4.0
        assert out.object_id == "r"

    def test_factor_larger_than_length(self, traj):
        out = decimate(traj, 100)
        assert len(out) == 1

    def test_validation(self, traj):
        with pytest.raises(ValueError):
            decimate(traj, 0)


class TestRefine:
    def test_identity(self, traj):
        assert refine(traj, 1) is traj

    def test_doubling(self, traj):
        out = refine(traj, 2)
        assert len(out) == 17
        assert out.dt == 1.0
        # Original snapshots are preserved at even indices.
        assert np.allclose(out.means[::2], traj.means)
        assert np.allclose(out.sigmas[::2], traj.sigmas)
        # Midpoints are halfway.
        assert np.allclose(out.means[1::2, 0], np.arange(8) + 0.5)

    def test_interpolated_sigma_formula(self, traj):
        out = refine(traj, 2)
        s0, s1 = traj.sigmas[0], traj.sigmas[1]
        expected = np.sqrt(0.25 * s0**2 + 0.25 * s1**2)
        assert out.sigmas[1] == pytest.approx(expected)
        # Variance reduction: midpoint sigma below both endpoints' max.
        assert out.sigmas[1] < max(s0, s1)

    def test_extra_sigma_inflates(self, traj):
        plain = refine(traj, 2)
        inflated = refine(traj, 2, extra_sigma=0.3)
        assert inflated.sigmas[1] > plain.sigmas[1]
        # Endpoints stay untouched.
        assert inflated.sigmas[0] == traj.sigmas[0]

    def test_validation(self, traj):
        with pytest.raises(ValueError):
            refine(traj, 0)
        with pytest.raises(ValueError):
            refine(traj, 2, extra_sigma=-1.0)
        with pytest.raises(ValueError):
            refine(UncertainTrajectory([[0, 0]], 0.1), 2)


class TestResampleDataset:
    def test_positive_factor_decimates(self, traj):
        dataset = TrajectoryDataset([traj], metadata={"kind": "location"})
        out = resample_dataset(dataset, 3)
        assert len(out[0]) == 3
        assert out.metadata["resample_factor"] == 3
        assert out.metadata["kind"] == "location"

    def test_negative_factor_refines(self, traj):
        dataset = TrajectoryDataset([traj])
        out = resample_dataset(dataset, -2)
        assert len(out[0]) == 17

    def test_zero_rejected(self, traj):
        with pytest.raises(ValueError):
            resample_dataset(TrajectoryDataset([traj]), 0)

    def test_mining_still_works_after_decimation(self, small_dataset):
        """Coarser snapshots remain a valid mining input end to end."""
        from repro.core.engine import EngineConfig, NMEngine
        from repro.core.trajpattern import TrajPatternMiner

        coarse = resample_dataset(small_dataset, 2)
        grid = coarse.make_grid(0.04)
        engine = NMEngine(coarse, grid, EngineConfig(delta=0.04, min_prob=1e-4))
        result = TrajPatternMiner(engine, k=4, max_length=3).mine()
        assert len(result) == 4
