"""Tests for the ``repro top`` dashboard: rendering, live and series modes.

Frame rendering is pure (dict in, text out) so most coverage is canned
payloads; the live-mode tests run a real server and drive ``run_top``
with ``once``/``max_frames`` so nothing loops forever.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.experiments.datasets import zebranet_dataset
from repro.obs import metrics, tracing
from repro.serve import PatternServer, ServeConfig, ServingSnapshot, SnapshotStore
from repro.serve.top import (
    TopConfig,
    fetch_stats,
    render_series_frame,
    render_stats_frame,
    run_top,
)


@pytest.fixture(scope="module")
def snapshot():
    dataset = zebranet_dataset(n_trajectories=10, n_ticks=20, seed=9)
    return ServingSnapshot.from_dataset(dataset, version="v-top")


@pytest.fixture(autouse=True)
def _obs_reset():
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()
    yield
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()


_STATS = {
    "version": "v1",
    "swaps": 2,
    "uptime_s": 120.0,
    "requests_served": 1200,
    "queue_depth": 3,
    "rss_peak_bytes": 256 << 20,
    "batcher": {
        "batches": 400,
        "mean_batch_size": 3.0,
        "max_batch_size": 8,
        "ema_batch_s": 0.002,
        "shed": {"queue_full": 5, "deadline": 1, "deadline_expired": 0},
        "closed_on": {"size": 10, "delay": 380, "boundary": 10},
    },
    "latency": {
        "score": {
            "count": 1200,
            "mean_ms": 2.0,
            "max_ms": 30.0,
            "all_time_ms": {"p50": 1.5, "p95": 6.0, "p99": 12.0},
            "window": {
                "window_s": 60.0,
                "count": 100,
                "rate_per_s": 1.7,
                "quantiles_ms": {"p50": 1.4, "p95": 5.0, "p99": 11.0},
                "exemplars": ["aaaa1111", "bbbb2222"],
            },
        }
    },
}


class TestStatsFrame:
    def test_first_frame_uses_lifetime_average(self):
        frame = render_stats_frame(_STATS, None, None)
        assert "snapshot v1" in frame
        assert "10.0/s avg" in frame  # 1200 / 120s
        assert "queue depth 3" in frame
        assert "queue_full 5" in frame
        assert "score" in frame and "11.00ms" in frame
        assert "aaaa1111" in frame  # tail-trace exemplars surface

    def test_delta_qps_between_frames(self):
        prev = dict(_STATS, requests_served=1000)
        frame = render_stats_frame(_STATS, prev, 2.0)
        assert "qps 100.0/s" in frame  # (1200-1000)/2

    def test_no_latency_hint(self):
        stats = dict(_STATS, latency={})
        frame = render_stats_frame(stats, None, None)
        assert "enable server metrics" in frame


class TestSeriesFrame:
    def test_renders_rates_and_quantiles(self):
        record = {
            "kind": "telemetry",
            "seq": 4,
            "interval_s": 10.0,
            "counters": {
                "serve.score.requests": {"value": 90, "delta": 30, "rate_per_s": 3.0},
                "serve.shed.queue_full": {"value": 2, "delta": 0, "rate_per_s": 0.0},
            },
            "gauges": {"serve.queue_depth": 1.0},
            "histograms": {
                "serve.score.latency_ns": {
                    "count": 90,
                    "window": {"count": 30,
                               "quantiles": {"p50": 2e6, "p95": 8e6, "p99": 9e6}},
                }
            },
        }
        frame = render_series_frame(record, None)
        assert "seq 4" in frame
        assert "request rate 3.0/s" in frame
        assert "queue_full 2" in frame
        assert "9.00ms" in frame

    def test_no_histograms(self):
        record = {"seq": 1, "interval_s": 1.0, "counters": {}, "gauges": {},
                  "histograms": {}}
        assert "no latency histograms" in render_series_frame(record, None)


def _serve_forever(snapshot, coro):
    """Run `coro(host, port)` against a live server."""

    async def run():
        server = PatternServer(SnapshotStore(snapshot), ServeConfig())
        host, port = await server.start()
        try:
            return await coro(host, port)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestLiveMode:
    def test_fetch_stats_roundtrip(self, snapshot):
        async def go(host, port):
            return await asyncio.get_running_loop().run_in_executor(
                None, fetch_stats, host, port
            )

        stats = _serve_forever(snapshot, go)
        assert stats["version"] == "v-top"
        assert "rss_peak_bytes" in stats

    def test_run_top_once_against_live_server(self, snapshot):
        out = io.StringIO()

        async def go(host, port):
            config = TopConfig(host=host, port=port, once=True)
            return await asyncio.get_running_loop().run_in_executor(
                None, run_top, config, out
            )

        rc = _serve_forever(snapshot, go)
        assert rc == 0
        assert "snapshot v-top" in out.getvalue()

    def test_once_unreachable_exits_nonzero(self):
        out = io.StringIO()
        rc = run_top(TopConfig(host="127.0.0.1", port=1, once=True), out=out)
        assert rc == 1
        assert "repro top:" in out.getvalue()

    def test_loop_mode_max_frames(self, snapshot):
        out = io.StringIO()

        async def go(host, port):
            config = TopConfig(host=host, port=port, interval_s=0.01, max_frames=2)
            return await asyncio.get_running_loop().run_in_executor(
                None, run_top, config, out
            )

        rc = _serve_forever(snapshot, go)
        assert rc == 0
        assert out.getvalue().count("repro top —") == 2


class TestSeriesMode:
    def test_once_with_series_file(self, tmp_path):
        record = {"kind": "telemetry", "seq": 1, "interval_s": 5.0,
                  "counters": {}, "gauges": {}, "histograms": {}}
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(record) + "\n")
        out = io.StringIO()
        rc = run_top(TopConfig(series=str(path), once=True), out=out)
        assert rc == 0
        assert "telemetry series seq 1" in out.getvalue()

    def test_once_with_empty_series_fails(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text("")
        out = io.StringIO()
        rc = run_top(TopConfig(series=str(path), once=True), out=out)
        assert rc == 1
        assert "no telemetry records" in out.getvalue()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TopConfig(interval_s=0.0)


class TestReconnectBackoff:
    def test_frame_shows_reconnects_when_nonzero(self):
        frame = render_stats_frame(_STATS, None, None)
        assert "reconnects" not in frame
        frame = render_stats_frame(_STATS, None, None, reconnects=3)
        assert "reconnects 3" in frame

    def test_loop_mode_backs_off_exponentially_when_unreachable(self):
        out = io.StringIO()
        config = TopConfig(
            host="127.0.0.1", port=1, interval_s=0.01, max_frames=3
        )
        rc = run_top(config, out=out)
        assert rc == 0
        text = out.getvalue()
        # Three failed polls: backoff doubles from the base each frame.
        assert "retrying in 0.25s" in text
        assert "retrying in 0.50s" in text
        assert "retrying in 1.00s" in text
        assert "reconnects 0" in text

    def test_recovery_increments_reconnects(self, monkeypatch):
        """fail -> succeed: the success frame counts one reconnect."""
        from repro.serve import top as top_module

        calls = {"n": 0}

        def flaky_fetch(host, port, timeout_s=5.0):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConnectionRefusedError("first poll fails")
            return dict(_STATS)

        monkeypatch.setattr(top_module, "fetch_stats", flaky_fetch)
        out = io.StringIO()
        config = TopConfig(
            host="127.0.0.1", port=1, interval_s=0.01, max_frames=2
        )
        rc = run_top(config, out=out)
        assert rc == 0
        text = out.getvalue()
        assert "retrying in 0.25s" in text   # the failed poll backs off
        assert "reconnects 1" in text        # the recovery is counted
