"""Tests for the pattern-augmented prediction application."""

import numpy as np
import pytest

from repro.apps.prediction import (
    PatternLibrary,
    compare_prediction,
    pattern_override,
)
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.mobility.models import LinearModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig

# Velocity grid over [-0.05, 0.05]^2, cell 0.01.
VGRID = Grid(BoundingBox(-0.05, -0.05, 0.05, 0.05), nx=10, ny=10)
DELTA = 0.01


def vcell(vx, vy):
    return VGRID.locate(vx, vy)


@pytest.fixture
def stop_pattern():
    """Cruise right at 0.025, then halt: the classic stop motif."""
    cruise = vcell(0.025, 0.005)
    halt = vcell(0.005, 0.005)
    return TrajectoryPattern((cruise, cruise, cruise, halt))


class TestPatternLibrary:
    def test_validation(self, stop_pattern):
        with pytest.raises(ValueError):
            PatternLibrary([stop_pattern], VGRID, DELTA, confirm_threshold=0.0)
        with pytest.raises(ValueError):
            PatternLibrary([stop_pattern], VGRID, DELTA, min_prefix=0)
        with pytest.raises(ValueError):
            PatternLibrary([stop_pattern], VGRID, DELTA, confirm_sigma_factor=0.0)

    def test_unusable_patterns_dropped(self):
        short = TrajectoryPattern((vcell(0.0, 0.0), vcell(0.0, 0.0)))
        wild = TrajectoryPattern((vcell(0, 0), WILDCARD, vcell(0, 0), vcell(0, 0)))
        library = PatternLibrary([short, wild], VGRID, DELTA, min_prefix=2)
        assert len(library) == 0
        assert library.max_prefix == 0

    def test_matching_prefix_predicts_continuation(self, stop_pattern):
        library = PatternLibrary(
            [stop_pattern], VGRID, DELTA, require_nonconstant_prefix=False
        )
        cruise_center = VGRID.cell_center(stop_pattern.cells[0])
        history = np.tile(cruise_center.as_tuple(), (3, 1))
        prediction = library.predict_next_velocity(history, sigma=0.004)
        halt_center = VGRID.cell_center(stop_pattern.cells[3])
        assert prediction == pytest.approx([halt_center.x, halt_center.y])
        assert library.n_confirmations == 1

    def test_non_matching_history_returns_none(self, stop_pattern):
        library = PatternLibrary([stop_pattern], VGRID, DELTA)
        history = np.tile([-0.04, -0.04], (3, 1))  # opposite direction
        assert library.predict_next_velocity(history, sigma=0.004) is None

    def test_history_shorter_than_min_prefix(self, stop_pattern):
        library = PatternLibrary([stop_pattern], VGRID, DELTA, min_prefix=3)
        history = np.tile([0.025, 0.005], (2, 1))
        assert library.predict_next_velocity(history, sigma=0.004) is None

    def test_constant_prefix_gated(self, stop_pattern):
        """With the default gate, a constant cruise prefix never fires."""
        library = PatternLibrary([stop_pattern], VGRID, DELTA)
        cruise_center = VGRID.cell_center(stop_pattern.cells[0])
        history = np.tile(cruise_center.as_tuple(), (3, 1))
        assert library.predict_next_velocity(history, sigma=0.004) is None

    def test_longest_context_wins(self):
        """Two patterns share a 2-step prefix; the one explaining 3 steps
        of history dictates the continuation."""
        a, b, c, d = (
            vcell(0.025, 0.005),
            vcell(0.005, 0.025),
            vcell(-0.025, 0.005),
            vcell(0.005, -0.025),
        )
        short = TrajectoryPattern((a, a, d))  # 2-prefix (a, a) -> d
        long = TrajectoryPattern((b, a, a, c))  # 3-prefix (b, a, a) -> c
        library = PatternLibrary([short, long], VGRID, DELTA)
        history = np.array(
            [VGRID.cell_center(b).as_tuple()]
            + [VGRID.cell_center(a).as_tuple()] * 2
        )
        prediction = library.predict_next_velocity(history, sigma=0.004)
        expected = VGRID.cell_center(c)
        assert prediction == pytest.approx([expected.x, expected.y])


class TestPatternOverride:
    def test_agreeing_pattern_defers_to_model(self, stop_pattern):
        """With a min_deviation gate, a pattern that predicts what the
        model already predicts returns None (model precision wins)."""
        cruise = TrajectoryPattern(tuple([stop_pattern.cells[0]] * 4))
        library = PatternLibrary([cruise], VGRID, DELTA)
        override = pattern_override(library, 0.004, min_deviation=0.01)
        cruise_v = np.array(VGRID.cell_center(cruise.cells[0]).as_tuple())
        estimates = np.cumsum(np.tile(cruise_v, (5, 1)), axis=0)
        model = LinearModel()
        model.observe(3.0, estimates[-2])
        model.observe(4.0, estimates[-1])
        delivered = np.array([True, False, False, False, True])
        assert override(5, estimates, model, delivered) is None

    def test_disagreeing_pattern_overrides(self, stop_pattern):
        library = PatternLibrary(
            [stop_pattern], VGRID, DELTA, require_nonconstant_prefix=False
        )
        override = pattern_override(library, 0.004, min_deviation=0.01)
        cruise_v = np.array(VGRID.cell_center(stop_pattern.cells[0]).as_tuple())
        estimates = np.cumsum(np.tile(cruise_v, (5, 1)), axis=0)
        model = LinearModel()
        model.observe(3.0, estimates[-2])
        model.observe(4.0, estimates[-1])
        delivered = np.array([True, False, False, False, True])
        prediction = override(5, estimates, model, delivered)
        assert prediction is not None
        halt_center = VGRID.cell_center(stop_pattern.cells[3])
        assert prediction == pytest.approx(
            estimates[-1] + [halt_center.x, halt_center.y]
        )

    def test_empty_library_never_overrides(self):
        library = PatternLibrary([], VGRID, DELTA)
        override = pattern_override(library, 0.004)
        assert override(3, np.zeros((3, 2)), LinearModel(), np.array([True, True, True])) is None


class TestComparePrediction:
    def _stop_and_go_path(self, n_cycles=6):
        """Cruise 4 ticks, halt 2 ticks, repeat -- highly patterned."""
        velocities = ([np.array([0.025, 0.005])] * 4 + [np.array([0.005, 0.005])] * 2) * n_cycles
        positions = np.cumsum([np.zeros(2)] + velocities, axis=0)
        return GroundTruthPath(positions)

    def test_helpful_patterns_reduce_mispredictions(self, stop_pattern):
        resume = TrajectoryPattern(
            (
                stop_pattern.cells[3],
                stop_pattern.cells[3],
                stop_pattern.cells[0],
                stop_pattern.cells[0],
            )
        )
        library = PatternLibrary(
            [stop_pattern, resume], VGRID, DELTA, require_nonconstant_prefix=False
        )
        config = ReportingConfig(uncertainty=0.012, confidence_c=2.0)
        comparison = compare_prediction(
            [self._stop_and_go_path()], LinearModel, config, library,
            recency=None,
        )
        assert comparison.base_mispredictions > 0
        assert comparison.augmented_mispredictions < comparison.base_mispredictions
        assert 0 < comparison.reduction <= 1

    def test_empty_library_changes_nothing(self):
        library = PatternLibrary([], VGRID, DELTA)
        config = ReportingConfig(uncertainty=0.012)
        comparison = compare_prediction(
            [self._stop_and_go_path()], LinearModel, config, library
        )
        assert comparison.reduction == 0.0
        assert comparison.base_mispredictions == comparison.augmented_mispredictions

    def test_zero_base_mispredictions(self):
        straight = GroundTruthPath(
            np.cumsum(np.tile([0.02, 0.0], (10, 1)), axis=0)
        )
        library = PatternLibrary([], VGRID, DELTA)
        config = ReportingConfig(uncertainty=0.5)
        comparison = compare_prediction([straight], LinearModel, config, library)
        assert comparison.base_mispredictions == 0
        assert comparison.reduction == 0.0
