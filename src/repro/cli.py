"""Command-line interface: ``trajpattern <command>``.

Two families of commands:

* **library commands** operating on user data (JSONL trajectory files or
  ``.tjc`` columnar stores, sniffed by magic): ``mine`` (top-k patterns ->
  pattern file), ``score`` (re-score a pattern file out-of-core),
  ``suggest`` (section 5 parameter guidance), plus the store tooling
  ``convert`` (JSONL/CSV -> ``.tjc``), ``ingest`` (Porto-taxi-style CSV ->
  ``.tjc``) and ``store-info`` (print a store's header);
* **reproduction commands** regenerating the paper's evaluation:
  ``table1``, ``fig3``, ``fig4``, ``ablations``, ``all`` and ``report``
  (everything into one markdown file);
* **serving commands**: ``serve`` (long-running NDJSON/TCP query server
  over a snapshot, :mod:`repro.serve`), ``loadgen`` (drive load against
  it, report latency percentiles; ``--trace-out`` originates a wire
  trace the server joins), ``top`` (live terminal dashboard polling the
  ``stats`` op or tailing a telemetry series) and ``slo`` (evaluate
  error budgets and burn rates over an exported telemetry series).

``mine`` and ``score`` accept the observability flags ``--log-level``,
``--trace-out``, ``--metrics-out`` and ``--manifest-out`` (see
:mod:`repro.obs`), ``serve`` adds ``--export-dir`` (periodic telemetry
export, :mod:`repro.obs.export`), and ``report <files...>`` pretty-prints
span traces (merging several into one tree), run manifests, metric
snapshots or telemetry series.
"""

from __future__ import annotations

import argparse
import sys

from repro.datagen.bus import BusFleetConfig
from repro.experiments import (
    Fig3Config,
    Fig4Config,
    Table1Config,
    run_fig3,
    run_interval_sensitivity,
    run_fig4a_k,
    run_fig4b_trajectories,
    run_fig4c_length,
    run_fig4d_grids,
    run_fig4e_delta,
    run_loss_sensitivity,
    run_prob_model_ablation,
    run_pruning_ablation,
    run_table1,
)

_SMALL_FLEET = BusFleetConfig(n_routes=3, buses_per_route=4, n_days=3, n_ticks=60)


# -- reproduction commands ----------------------------------------------------


def _table1(scale: str) -> str:
    config = (
        Table1Config(k=30, fleet=_SMALL_FLEET, max_length=6)
        if scale == "small"
        else Table1Config()
    )
    return run_table1(config).render()


def _fig3(scale: str) -> str:
    config = (
        Fig3Config(k=25, fleet=_SMALL_FLEET, max_length=6)
        if scale == "small"
        else Fig3Config()
    )
    return run_fig3(config).render()


def _fig4(scale: str) -> str:
    if scale == "small":
        config = Fig4Config(k=5, n_trajectories=25, n_ticks=40, target_cells=1024)
        panels = [
            run_fig4a_k(config, ks=(3, 5, 10)),
            run_fig4b_trajectories(config, sizes=(15, 25, 50)),
            run_fig4c_length(config, lengths=(20, 40, 80)),
            run_fig4d_grids(config, grid_counts=(256, 1024, 4096)),
            run_fig4e_delta(
                Fig4Config(k=25, n_trajectories=25, n_ticks=40),
                delta_factors=(0.5, 1.0, 2.0, 4.0, 8.0),
            ),
        ]
    else:
        config = Fig4Config()
        panels = [
            run_fig4a_k(config),
            run_fig4b_trajectories(config),
            run_fig4c_length(config),
            run_fig4d_grids(config),
            run_fig4e_delta(config),
        ]
    return "\n\n".join(panel.render() for panel in panels)


def _ablations(scale: str) -> str:
    del scale  # the ablations are already laptop-scale
    return "\n\n".join(
        [
            run_pruning_ablation().render(),
            run_prob_model_ablation().render(),
            run_loss_sensitivity().render(),
            run_interval_sensitivity().render(),
        ]
    )


_EXPERIMENTS = {
    "table1": _table1,
    "fig3": _fig3,
    "fig4": _fig4,
    "ablations": _ablations,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_EXPERIMENTS[name](args.scale))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.target:
        from repro.obs.report import render_files

        print(render_files(args.target))
        return 0

    from repro.experiments.report import build_report

    report = build_report()
    report.write(args.output)
    print(f"wrote {args.output} ({len(report.sections)} sections)")
    return 0


# -- library commands -----------------------------------------------------------


def _load_dataset_arg(path):
    """Open a dataset argument: ``.tjc`` store (by magic) or JSONL.

    Returns ``(dataset, store)`` where ``store`` is the open
    :class:`~repro.storage.TrajectoryStore` (``None`` for JSONL).  Store
    datasets are lazy: opening costs O(footer) and trajectories stream
    through bounded reads on demand.
    """
    from repro.storage import is_store_path, open_store

    if is_store_path(path):
        store = open_store(path)
        return store.dataset(), store
    from repro.trajectory.io import load_dataset_jsonl

    return load_dataset_jsonl(path), None


def _store_manifest_extra(store) -> dict:
    """The ``store`` manifest section: provenance of a ``.tjc`` input."""
    return {
        "store": {
            "path": str(store.path),
            "format_version": store.format_version,
            "content_hash": store.content_hash,
            "size_bytes": store.size_bytes,
            "n_trajectories": store.n_trajectories,
            "total_snapshots": store.total_snapshots,
            "compression": store.compression,
            "positions": store.positions,
        }
    }


def _resolve_manifest(manifest_arg: str | None, default_base: str) -> str | None:
    """Resolve ``--manifest-out`` (``"auto"`` -> ``<default_base>.manifest.json``)."""
    if manifest_arg is None:
        return None
    if manifest_arg == "auto":
        return f"{default_base}.manifest.json"
    return manifest_arg


def _obs_setup(args: argparse.Namespace, manifest_out: str | None) -> None:
    """Switch on the observability pieces the flags ask for.

    The manifest embeds a metric snapshot, so requesting one implies
    enabling the metrics registry even without ``--metrics-out``.
    """
    from repro import obs

    obs.configure(
        log_level=args.log_level,
        trace_out=args.trace_out,
        enable_metrics=args.metrics_out is not None or manifest_out is not None,
    )


def _obs_finish(
    args: argparse.Namespace,
    manifest_out: str | None,
    command: str,
    dataset_fingerprint: str,
    config,
    timer,
    extra_metrics: dict | None = None,
    manifest_extra: dict | None = None,
) -> None:
    """Write the metrics/manifest outputs, then return obs to default-off."""
    import json
    from pathlib import Path

    from repro import obs
    from repro.obs import manifest as obs_manifest
    from repro.obs import metrics

    snapshot = metrics.get_registry().snapshot()
    if extra_metrics:
        snapshot.update(extra_metrics)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(snapshot, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote metrics snapshot -> {args.metrics_out}")
    if manifest_out is not None:
        arguments = {
            k: v for k, v in vars(args).items() if k != "func" and v is not None
        }
        document = obs_manifest.build_manifest(
            command=command,
            arguments=arguments,
            dataset_fingerprint=dataset_fingerprint,
            config=config,
            metrics=snapshot,
            wall_time_s=timer.wall_time_s,
            cpu_time_s=timer.cpu_time_s,
            extra=manifest_extra,
        )
        obs_manifest.write_manifest(manifest_out, document)
        print(f"wrote run manifest -> {manifest_out}")
    # Close the trace file and disable the registry so consecutive
    # in-process invocations (tests, notebooks) start from default-off.
    obs.shutdown()


def _cmd_mine(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.core import index_cache, kernels
    from repro.core.engine import EngineConfig, NMEngine
    from repro.core.parameters import suggest_parameters
    from repro.core.results_io import save_mining_result
    from repro.core.trajpattern import TrajPatternMiner
    from repro.obs import manifest as obs_manifest
    from repro.obs import tracing

    manifest_out = _resolve_manifest(args.manifest_out, args.output)
    _obs_setup(args, manifest_out)

    dataset, store = _load_dataset_arg(args.dataset)
    if args.cell_size and args.gamma is not None:
        # Everything a suggestion would provide was pinned on the command
        # line, so skip the full-dataset statistics scan -- this is what
        # keeps store-backed mining O(footer) before the engines start.
        cell, gamma = args.cell_size, args.gamma
    else:
        suggestion = suggest_parameters(dataset)
        cell = args.cell_size if args.cell_size else suggestion.cell_size
        gamma = args.gamma if args.gamma is not None else suggestion.gamma
    delta = args.delta if args.delta else cell
    grid = dataset.make_grid(cell)
    engine_config = EngineConfig(
        delta=delta,
        min_prob=args.min_prob,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        backend=args.backend,
        dtype=args.dtype,
        log_level=args.log_level,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        store_path=str(store.path) if store is not None else None,
        radius_sigmas=args.radius_sigmas,
    )
    parallel_snapshot = None
    with obs_manifest.RunTimer() as timer:
        with tracing.span("run", command="mine", dataset=str(args.dataset)):
            with ExitStack() as stack:
                if engine_config.jobs > 1:
                    from repro.core.parallel import ParallelNMEngine

                    engine = stack.enter_context(
                        ParallelNMEngine(dataset, grid, engine_config)
                    )
                else:
                    engine = NMEngine(dataset, grid, engine_config)
                print(
                    f"dataset: {len(dataset)} trajectories, grid {grid.nx}x{grid.ny}, "
                    f"delta {delta:.6g}, jobs {engine_config.jobs}, "
                    f"backend {engine.backend_name}/{engine.backend_dtype}"
                    + (", index cache hit" if engine.index_cache_hit else "")
                )
                result = TrajPatternMiner(
                    engine,
                    k=args.k,
                    min_length=args.min_length,
                    max_length=args.max_length,
                ).mine(discover_groups=True, gamma=gamma)
                if hasattr(engine, "obs_snapshot"):
                    parallel_snapshot = engine.obs_snapshot()
            save_mining_result(result, grid, args.output)
    print(
        f"mined {len(result)} patterns (mean length {result.mean_length():.2f}, "
        f"{result.stats.wall_time_s:.1f}s) -> {args.output}"
    )
    for pattern, nm in result.as_pairs()[: args.show]:
        print(f"  NM {nm:12.2f}  {pattern.cells}")
    _obs_finish(
        args,
        manifest_out,
        command="mine",
        dataset_fingerprint=index_cache.dataset_fingerprint(dataset),
        config=engine_config,
        timer=timer,
        extra_metrics={
            "kernel_backend": kernels.backend_summary(engine_config),
            **({"parallel": parallel_snapshot} if parallel_snapshot else {}),
        },
        manifest_extra=_store_manifest_extra(store) if store is not None else None,
    )
    if store is not None:
        store.close()
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    import hashlib
    from pathlib import Path

    from repro.core import kernels
    from repro.core.engine import EngineConfig
    from repro.core.results_io import load_mining_result
    from repro.core.streaming import StreamingNMEngine
    from repro.obs import manifest as obs_manifest
    from repro.obs import tracing

    manifest_out = _resolve_manifest(args.manifest_out, args.dataset)
    _obs_setup(args, manifest_out)

    result, grid = load_mining_result(args.patterns)
    engine_config = EngineConfig(
        delta=args.delta,
        min_prob=args.min_prob,
        cache_dir=args.cache_dir,
        backend=args.backend,
        dtype=args.dtype,
        log_level=args.log_level,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    with obs_manifest.RunTimer() as timer:
        with tracing.span("run", command="score", dataset=str(args.dataset)):
            streaming = StreamingNMEngine(
                args.dataset, grid, engine_config, chunk_size=args.chunk_size
            )
            verified = streaming.verify_top_k(
                result.patterns, k=len(result.patterns)
            )
    print(f"re-scored {len(verified)} patterns against {args.dataset}:")
    for pattern, nm in verified[: args.show]:
        print(f"  NM {nm:12.2f}  {pattern.cells}")
    store_extra = None
    if streaming.store_backed:
        from repro.storage import open_store

        with open_store(args.dataset) as store:
            fingerprint = store.content_hash
            store_extra = _store_manifest_extra(store)
    else:
        fingerprint = hashlib.sha256(Path(args.dataset).read_bytes()).hexdigest()
    _obs_finish(
        args,
        manifest_out,
        command="score",
        dataset_fingerprint=fingerprint,
        config=engine_config,
        timer=timer,
        extra_metrics={
            "kernel_backend": kernels.backend_summary(engine_config),
            "streaming": {
                "chunks_scanned": streaming.n_chunks_scanned,
                "span_cache_hits": streaming.span_cache_hits,
            },
        },
        manifest_extra=store_extra,
    )
    return 0


def _cmd_suggest(args: argparse.Namespace) -> int:
    from repro.core.parameters import suggest_parameters

    dataset, store = _load_dataset_arg(args.dataset)
    try:
        print(suggest_parameters(dataset).render())
    finally:
        if store is not None:
            store.close()
    return 0


# -- store commands -----------------------------------------------------------


def _writer_kwargs(args: argparse.Namespace) -> dict:
    """Shared ``StoreWriter`` options for ``convert`` and ``ingest``."""
    kwargs: dict = {
        "compression": args.compression,
        "positions": "q32" if args.quant_scale else "f64",
    }
    if args.quant_scale:
        kwargs["quant_scale"] = args.quant_scale
    if getattr(args, "timestamps", False):
        kwargs["store_times"] = True
    return kwargs


def _print_store_summary(summary: dict) -> None:
    ratio = (
        summary["source_bytes"] / summary["size_bytes"]
        if summary["size_bytes"]
        else 0.0
    )
    print(
        f"wrote {summary['path']}: {summary['n_trajectories']} trajectories, "
        f"{summary['total_snapshots']} snapshots, "
        f"{summary['size_bytes']} bytes ({ratio:.2f}x vs source)"
    )


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.storage import convert_csv_to_store, convert_jsonl_to_store

    if args.format == "csv" or (
        args.format == "auto" and args.source.lower().endswith(".csv")
    ):
        summary = convert_csv_to_store(
            args.source,
            args.output,
            default_sigma=args.default_sigma,
            **_writer_kwargs(args),
        )
    else:
        summary = convert_jsonl_to_store(
            args.source, args.output, **_writer_kwargs(args)
        )
    _print_store_summary(summary)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.storage import ingest_porto_csv

    summary = ingest_porto_csv(
        args.source,
        args.output,
        sigma=args.sigma,
        dt=args.dt,
        skip_malformed=not args.no_skip_malformed,
        **_writer_kwargs(args),
    )
    _print_store_summary(summary)
    if summary.get("n_skipped"):
        print(f"skipped {summary['n_skipped']} malformed rows")
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    import json

    from repro.storage import open_store

    with open_store(args.store) as store:
        print(json.dumps(store.describe(), indent=2))
    return 0


# -- serving commands ---------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs
    from repro.serve import (
        IngestConfig,
        PatternServer,
        ServeConfig,
        ServingSnapshot,
        SnapshotStore,
    )

    obs.configure(
        log_level=args.log_level,
        trace_out=args.trace_out,
        enable_metrics=args.metrics_out is not None or args.export_dir is not None,
    )
    exporter = None
    if args.export_dir is not None:
        from repro.obs.export import TelemetryExporter

        exporter = TelemetryExporter(
            args.export_dir, interval_s=args.export_interval
        )
        exporter.start()
        print(
            f"exporting telemetry -> {exporter.series_path} "
            f"(every {exporter.interval_s:g}s)",
            flush=True,
        )
    snapshot = ServingSnapshot.load(
        args.snapshot,
        cache_dir=args.cache_dir,
        backend=args.backend,
        dtype=args.dtype,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue=args.max_queue,
        default_timeout_ms=args.timeout_ms,
        fallback_model=args.fallback_model,
        allow_shutdown=not args.no_shutdown,
        cache_dir=args.cache_dir,
    )
    ingest = None
    if args.ingest:
        ingest = IngestConfig(
            k=args.ingest_k,
            remine_every=args.ingest_every,
            window=args.ingest_window,
            min_length=args.ingest_min_length,
        )

    async def run() -> None:
        server = PatternServer(SnapshotStore(snapshot), config, ingest=ingest)
        host, port = await server.start()
        print(
            f"serving snapshot {snapshot.version} on {host}:{port} "
            f"(batch<={config.max_batch}, window {config.max_delay_ms}ms, "
            f"queue<={config.max_queue}, backend "
            f"{snapshot.engine.backend_name}/{snapshot.engine.backend_dtype}"
            + (
                f", ingest k={ingest.k} every {ingest.remine_every} batch(es)"
                + (f" window {ingest.window}" if ingest.window else "")
                if ingest is not None
                else ""
            )
            + ")",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        if exporter is not None:
            exporter.stop()
        if args.metrics_out:
            import json
            from pathlib import Path

            from repro.obs import metrics

            Path(args.metrics_out).write_text(
                json.dumps(metrics.get_registry().snapshot(), indent=2) + "\n",
                encoding="utf-8",
            )
        obs.shutdown()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro import obs
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    if args.trace_out:
        obs.configure(trace_out=args.trace_out)
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        qps=args.qps,
        op=args.op,
        measure=args.measure,
        patterns_per_request=args.patterns_per_request,
        timeout_ms=args.timeout_ms,
        seed=args.seed,
        trace=args.trace_out is not None,
    )
    try:
        report = asyncio.run(run_loadgen(config))
    finally:
        if args.trace_out:
            obs.shutdown()
    if args.json_out:
        from pathlib import Path

        Path(args.json_out).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    latency = report["latency"]
    print(
        f"{report['mode']}-loop {report['op']}: {report['ok']}/{report['sent']} ok, "
        f"{report['overloaded']} overloaded, {report['errors']} errors, "
        f"{report['achieved_qps']:.0f} req/s"
    )
    if latency["p50_ms"] is not None:
        print(
            f"latency ms: p50 {latency['p50_ms']:.2f}  p95 {latency['p95_ms']:.2f}  "
            f"p99 {latency['p99_ms']:.2f}  max {latency['max_ms']:.2f}"
        )
    if report["shed_reasons"]:
        reasons = "  ".join(
            f"{reason} {count}"
            for reason, count in sorted(report["shed_reasons"].items())
        )
        print(f"shed: {reasons}")
    if report.get("trace_id"):
        print(f"trace: {report['trace_id']} -> {args.trace_out}")
    return 0 if report["errors"] == 0 else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import TopConfig, run_top

    config = TopConfig(
        host=args.host,
        port=args.port,
        interval_s=args.interval,
        once=args.once,
        series=args.series,
    )
    return run_top(config)


def _parse_address(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` for worker/router listen flags."""
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {spec!r}")
    return host, int(port)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist.worker import run_worker

    host, port = args.listen
    run_worker(args.store, host=host, port=port, name=args.name)
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    import asyncio

    from repro.dist.router import RouterConfig, run_router

    host, port = args.listen
    config = RouterConfig(
        host=host,
        port=port,
        replicas=tuple(args.replica),
        stats_interval_s=args.stats_interval,
    )
    try:
        asyncio.run(run_router(config))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.obs import slo as slo_mod
    from repro.obs.export import load_series

    records = load_series(args.series)
    if not records:
        print(f"slo: no telemetry records in {args.series}", file=sys.stderr)
        return 1
    objectives = (
        slo_mod.load_slo_spec(args.spec)
        if args.spec
        else slo_mod.DEFAULT_OBJECTIVES
    )
    results = slo_mod.evaluate_slos(records, objectives)
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(slo_mod.render_slo_report(results))
    return 0 if all(r["ok"] for r in results) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    return bench.run_suites(
        suite=args.suite, output_dir=args.output_dir, rounds=args.rounds
    )


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.testkit.oracle import DEFAULT_SEEDS, run_oracle

    seeds = (
        [int(s) for s in args.seeds.split(",") if s.strip()]
        if args.seeds
        else list(DEFAULT_SEEDS)
    )
    jobs_grid = [int(j) for j in args.jobs_grid.split(",") if j.strip()]
    failures = 0
    for seed in seeds:
        report = run_oracle(
            seed,
            quick=args.quick,
            jobs_grid=jobs_grid,
            include_serve=not args.no_serve,
            include_dist=args.dist,
            backends=args.backends,
        )
        print(report.describe())
        if not report.ok:
            failures += 1
    mode = "quick" if args.quick else "full"
    if args.dist:
        mode += "+dist"
    print(
        f"selfcheck ({mode}): {len(seeds) - failures}/{len(seeds)} seeds agree "
        f"across all execution paths"
    )
    return 0 if failures == 0 else 1


# -- entry point -------------------------------------------------------------------


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Kernel-backend flags shared by the engine-building commands."""
    group = parser.add_argument_group("kernel backend")
    group.add_argument(
        "--backend",
        choices=["numpy", "compiled", "auto"],
        default="auto",
        help=(
            "numeric kernel backend: 'compiled' (native loops; falls back to "
            "numpy with a warning when no toolchain is available), 'numpy' "
            "(the reference), or 'auto' (compiled when available; default)"
        ),
    )
    group.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default="float64",
        help="value dtype the evaluation kernels run in (default float64)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the ``mine`` and ``score`` commands."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        default=None,
        dest="log_level",
        help="emit structured JSON logs at this level (DEBUG, INFO, ...)",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        help="write a span trace (JSONL) of the run to this file",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        dest="metrics_out",
        help="write a metric snapshot (JSON) of the run to this file",
    )
    group.add_argument(
        "--manifest-out",
        nargs="?",
        const="auto",
        default=None,
        dest="manifest_out",
        help=(
            "write a run manifest (git sha, config, dataset hash, metrics, "
            "resource footprint); without a value, '<output>.manifest.json'"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trajpattern",
        description=(
            "TrajPattern (EDBT 2006): mine sequential patterns from imprecise "
            "trajectories, and reproduce the paper's experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("run", help="run a paper experiment")
    exp.add_argument("experiment", choices=sorted(_EXPERIMENTS) + ["all"])
    exp.add_argument("--scale", choices=["small", "paper"], default="small")
    exp.set_defaults(func=_cmd_experiment)
    # Back-compat: the experiment names also work as top-level commands.
    for name in sorted(_EXPERIMENTS) + ["all"]:
        alias = sub.add_parser(name, help=f"alias for: run {name}")
        alias.add_argument("--scale", choices=["small", "paper"], default="small")
        alias.set_defaults(func=_cmd_experiment, experiment=name)

    report = sub.add_parser(
        "report",
        help=(
            "write the full reproduction report, or pretty-print trace / "
            "manifest / metrics / telemetry files"
        ),
    )
    report.add_argument(
        "target",
        nargs="*",
        default=[],
        help=(
            "span traces (JSONL; several merge into one tree), a run "
            "manifest, a metrics snapshot or a telemetry series to render; "
            "omitted: build the reproduction report"
        ),
    )
    report.add_argument("--output", default="REPORT.md")
    report.set_defaults(func=_cmd_report)

    mine = sub.add_parser(
        "mine", help="mine top-k patterns from a JSONL or .tjc dataset"
    )
    mine.add_argument("dataset", help="trajectory JSONL file or .tjc columnar store")
    mine.add_argument("--output", default="patterns.json")
    mine.add_argument("-k", type=int, default=20)
    mine.add_argument("--min-length", type=int, default=2, dest="min_length")
    mine.add_argument("--max-length", type=int, default=8, dest="max_length")
    mine.add_argument("--cell-size", type=float, default=None, dest="cell_size")
    mine.add_argument("--delta", type=float, default=None)
    mine.add_argument("--min-prob", type=float, default=1e-5, dest="min_prob")
    mine.add_argument(
        "--radius-sigmas",
        type=float,
        default=None,
        dest="radius_sigmas",
        help=(
            "index-build enumeration radius in sigmas (default: derived "
            "from --min-prob so no above-floor cell is missed)"
        ),
    )
    mine.add_argument(
        "--gamma",
        type=float,
        default=None,
        help=(
            "group-discovery distance threshold; giving both --cell-size and "
            "--gamma skips the parameter-suggestion scan of the dataset"
        ),
    )
    mine.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sharded evaluation (1 = in-process)",
    )
    mine.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="directory for the persistent index cache (off when omitted)",
    )
    mine.add_argument("--show", type=int, default=10)
    _add_backend_arguments(mine)
    _add_obs_arguments(mine)
    mine.set_defaults(func=_cmd_mine)

    score = sub.add_parser(
        "score", help="re-score a pattern file against a dataset (out-of-core)"
    )
    score.add_argument("patterns", help="pattern file from \'mine\'")
    score.add_argument("dataset", help="trajectory JSONL file or .tjc columnar store")
    score.add_argument("--delta", type=float, required=True)
    score.add_argument("--min-prob", type=float, default=1e-5, dest="min_prob")
    score.add_argument("--chunk-size", type=int, default=64, dest="chunk_size")
    score.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="directory for per-chunk index caches (off when omitted)",
    )
    score.add_argument("--show", type=int, default=10)
    _add_backend_arguments(score)
    _add_obs_arguments(score)
    score.set_defaults(func=_cmd_score)

    suggest = sub.add_parser(
        "suggest", help="suggest delta/grid/gamma for a dataset (section 5)"
    )
    suggest.add_argument("dataset", help="trajectory JSONL file or .tjc columnar store")
    suggest.set_defaults(func=_cmd_suggest)

    def _add_writer_arguments(parser: argparse.ArgumentParser) -> None:
        group = parser.add_argument_group("store encoding")
        group.add_argument(
            "--compression",
            choices=["none", "zlib"],
            default="none",
            help=(
                "per-chunk compression; 'none' keeps positions memory-mappable "
                "(default), 'zlib' trades zero-copy reads for size"
            ),
        )
        group.add_argument(
            "--quant-scale",
            type=float,
            default=None,
            dest="quant_scale",
            help=(
                "quantise positions to an int32 lattice of this pitch "
                "(lossy; omitted: exact float64)"
            ),
        )

    convert = sub.add_parser(
        "convert",
        help="convert a JSONL or CSV trajectory file to a .tjc columnar store",
    )
    convert.add_argument("source", help="trajectory JSONL or CSV file")
    convert.add_argument("output", help="destination .tjc path (written atomically)")
    convert.add_argument(
        "--format",
        choices=["auto", "jsonl", "csv"],
        default="auto",
        help="source format (default: csv for *.csv, else jsonl)",
    )
    convert.add_argument(
        "--timestamps",
        action="store_true",
        help="also store per-snapshot timestamps (delta-encoded ticks)",
    )
    convert.add_argument(
        "--default-sigma",
        type=float,
        default=None,
        dest="default_sigma",
        help="CSV only: sigma for rows without a sigma column",
    )
    _add_writer_arguments(convert)
    convert.set_defaults(func=_cmd_convert)

    ingest = sub.add_parser(
        "ingest",
        help=(
            "ingest a Porto-taxi-style CSV (POLYLINE column of [lon, lat] "
            "fixes) into a .tjc columnar store"
        ),
    )
    ingest.add_argument("source", help="CSV file with a POLYLINE column")
    ingest.add_argument("output", help="destination .tjc path (written atomically)")
    ingest.add_argument(
        "--sigma",
        type=float,
        required=True,
        help="positional uncertainty assigned to every GPS fix (degrees)",
    )
    ingest.add_argument(
        "--dt",
        type=float,
        default=15.0,
        help="seconds between consecutive fixes (Porto samples at 15s)",
    )
    ingest.add_argument(
        "--no-skip-malformed",
        action="store_true",
        dest="no_skip_malformed",
        help="fail on malformed rows instead of counting and skipping them",
    )
    _add_writer_arguments(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    store_info = sub.add_parser(
        "store-info", help="print a .tjc store's header as JSON (O(footer))"
    )
    store_info.add_argument("store", help=".tjc columnar store")
    store_info.set_defaults(func=_cmd_store_info)

    serve = sub.add_parser(
        "serve",
        help="serve pattern scoring / prediction queries over NDJSON TCP",
    )
    serve.add_argument(
        "snapshot",
        help="snapshot directory (dataset.tjc or dataset.jsonl [+ "
        "patterns.json, serve.json]) or a bare dataset file (JSONL or .tjc)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7706)
    serve.add_argument("--max-batch", type=int, default=64, dest="max_batch")
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        dest="max_delay_ms",
        help="micro-batching window: the most latency an isolated request "
        "pays waiting for company",
    )
    serve.add_argument("--max-queue", type=int, default=512, dest="max_queue")
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=1000.0,
        dest="timeout_ms",
        help="default per-request deadline (clients may override)",
    )
    serve.add_argument(
        "--fallback-model",
        choices=["lm", "lkf", "rmf"],
        default="lm",
        dest="fallback_model",
        help="dead-reckoning model answering degraded predictions",
    )
    serve.add_argument(
        "--no-shutdown",
        action="store_true",
        dest="no_shutdown",
        help="refuse the remote 'shutdown' op",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent index cache; makes snapshot loads/swaps warm-start",
    )
    serve.add_argument(
        "--ingest",
        action="store_true",
        help="enable the 'ingest' op: fold live report batches into an "
        "incremental index and republish snapshots on a cadence",
    )
    serve.add_argument(
        "--ingest-k",
        type=int,
        default=8,
        dest="ingest_k",
        help="top-k re-mined on each republish (default 8)",
    )
    serve.add_argument(
        "--ingest-every",
        type=int,
        default=1,
        dest="ingest_every",
        help="republish cadence in ingest batches (default 1 = every batch)",
    )
    serve.add_argument(
        "--ingest-window",
        type=int,
        default=None,
        dest="ingest_window",
        help="sliding window: max resident trajectories; the oldest beyond "
        "it are evicted after each append (default unbounded)",
    )
    serve.add_argument(
        "--ingest-min-length",
        type=int,
        default=1,
        dest="ingest_min_length",
        help="minimum pattern length for the re-mine (default 1)",
    )
    _add_backend_arguments(serve)
    serve.add_argument("--log-level", default=None, dest="log_level")
    serve.add_argument("--trace-out", default=None, dest="trace_out")
    serve.add_argument("--metrics-out", default=None, dest="metrics_out")
    serve.add_argument(
        "--export-dir",
        default=None,
        dest="export_dir",
        help=(
            "periodically export telemetry (JSONL series + Prometheus text) "
            "into this directory; implies metrics collection"
        ),
    )
    serve.add_argument(
        "--export-interval",
        type=float,
        default=10.0,
        dest="export_interval",
        help="telemetry export cadence in seconds (default 10)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="drive load against a running 'repro serve' instance"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7706)
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument(
        "--qps",
        type=float,
        default=None,
        help="open-loop target rate (omitted: closed loop at --concurrency)",
    )
    loadgen.add_argument("--op", choices=["score", "predict", "mixed"], default="score")
    loadgen.add_argument("--measure", choices=["nm", "match"], default="nm")
    loadgen.add_argument(
        "--patterns-per-request",
        type=int,
        default=1,
        dest="patterns_per_request",
    )
    loadgen.add_argument("--timeout-ms", type=float, default=None, dest="timeout_ms")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--json-out",
        default=None,
        dest="json_out",
        help="also write the full report as JSON to this file",
    )
    loadgen.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        help=(
            "originate a client-side trace (JSONL to this file) and attach "
            "its context to every request, so the server's spans join it"
        ),
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    top = sub.add_parser(
        "top",
        help=(
            "live terminal dashboard for a running server (poll 'stats', or "
            "tail a telemetry series with --series)"
        ),
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7706)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh cadence in seconds (default 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (non-zero when the source is down)",
    )
    top.add_argument(
        "--series",
        default=None,
        help="tail this telemetry.jsonl instead of polling the server",
    )
    top.set_defaults(func=_cmd_top)

    slo = sub.add_parser(
        "slo",
        help=(
            "evaluate SLO error budgets and burn rates over an exported "
            "telemetry series (exit non-zero on violation)"
        ),
    )
    slo.add_argument("series", help="telemetry.jsonl written by serve --export-dir")
    slo.add_argument(
        "--spec",
        default=None,
        help="JSON SLO spec ({'objectives': [...]}); omitted: built-in defaults",
    )
    slo.add_argument(
        "--json",
        action="store_true",
        help="emit the full evaluation as JSON instead of the table",
    )
    slo.set_defaults(func=_cmd_slo)

    worker = sub.add_parser(
        "worker",
        help=(
            "run a remote worker pool: open the local copy of a .tjc store "
            "and evaluate (store_hash, lo, hi) spans shipped by a "
            "DistNMEngine coordinator over NDJSON/TCP"
        ),
    )
    worker.add_argument("store", help="path to this host's copy of the .tjc store")
    worker.add_argument(
        "--listen",
        type=_parse_address,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="listen address (port 0 picks a free port; default 127.0.0.1:0)",
    )
    worker.add_argument(
        "--name", default="", help="pool name shown in coordinator logs"
    )
    worker.set_defaults(func=_cmd_worker)

    router = sub.add_parser(
        "router",
        help=(
            "fan serving requests across PatternServer replicas "
            "(least-queue-depth routing, fleet-wide snapshot swaps)"
        ),
    )
    router.add_argument(
        "--listen",
        type=_parse_address,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="listen address (port 0 picks a free port; default 127.0.0.1:0)",
    )
    router.add_argument(
        "--replica",
        type=_parse_address,
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="replica address (repeat for each PatternServer)",
    )
    router.add_argument(
        "--stats-interval",
        type=float,
        default=2.0,
        dest="stats_interval",
        help="seconds between replica queue-depth polls (default 2.0)",
    )
    router.set_defaults(func=_cmd_router)

    selfcheck = sub.add_parser(
        "selfcheck",
        help=(
            "differential oracle: check that every execution path (scalar, "
            "batched, parallel shards, cold/warm cache, streaming, live "
            "server) agrees on NM/match scores for seeded datasets"
        ),
    )
    selfcheck.add_argument(
        "--seeds",
        default=None,
        help="comma-separated dataset seeds (default: the built-in trio)",
    )
    selfcheck.add_argument(
        "--jobs-grid",
        default="1,2,4",
        dest="jobs_grid",
        help="comma-separated parallel worker counts to check (default 1,2,4)",
    )
    selfcheck.add_argument(
        "--quick",
        action="store_true",
        help="smaller datasets and frontiers (CI-sized; same path coverage)",
    )
    selfcheck.add_argument(
        "--no-serve",
        action="store_true",
        dest="no_serve",
        help="skip the live-server round-trip path",
    )
    selfcheck.add_argument(
        "--dist",
        action="store_true",
        help=(
            "additionally check the distributed path: a loopback worker "
            "pool plus a local fork pool behind DistNMEngine, compared "
            "bit-for-bit against the same-width parallel engine"
        ),
    )
    selfcheck.add_argument(
        "--backends",
        choices=["default", "all"],
        default="default",
        help=(
            "'all': additionally score every kernel backend x dtype "
            "combination (unavailable ones are reported as explicit skips)"
        ),
    )
    selfcheck.set_defaults(func=_cmd_selfcheck)

    bench = sub.add_parser(
        "bench",
        help=(
            "run the performance benchmark suite (engine, scaling, kernel "
            "backends, serving) and append to the BENCH_*.json history files"
        ),
    )
    bench.add_argument(
        "--suite",
        choices=["all", "engine", "kernels", "serve", "store", "dist", "incremental"],
        default="all",
        help=(
            "which benchmark family to run (default all = engine + serve + "
            "store; 'kernels' is the fast backend-comparison loop; 'dist' "
            "re-runs only the distributed dispatch and routed-serving legs)"
        ),
    )
    bench.add_argument(
        "--output-dir",
        default=None,
        dest="output_dir",
        help="where the BENCH_*.json history files live (default: repo root)",
    )
    bench.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timing rounds per measurement (default 3)",
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
