"""Pattern-augmented location prediction (paper section 6.1, Fig. 3).

The experiment: mine top-k velocity patterns on training trajectories, then
track held-out objects with a dead-reckoning model that *consults the
patterns first*.  Before predicting tick ``t``, the server derives the
recent velocity history from its own estimates; if a trailing segment
confirms a mined pattern's prefix -- the Eq. 2 probability of the segment
under the prefix is at least the confirmation threshold (the paper uses
90%) -- the pattern's next position (a velocity-grid cell centre) supplies
the velocity prediction; otherwise the base model predicts as usual.  Every
avoided uplink is a mis-prediction saved; Fig. 3 reports the reduction
ratio per base model (LM / LKF / RMF) for match-mined vs NM-mined patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.apps.confirm import ConfirmationIndex
from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.mobility.models import MotionModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig, dead_reckon
from repro.uncertainty.gaussian import ProbModel


class PatternLibrary:
    """Mined velocity patterns packaged for online prefix confirmation.

    Parameters
    ----------
    patterns:
        Mined velocity patterns (cells of ``grid``), typically the top-k
        from :class:`~repro.core.trajpattern.TrajPatternMiner` or the match
        baseline.
    grid:
        The velocity grid the patterns were mined on.
    delta:
        The indifference distance used during mining.
    confirm_threshold:
        Minimum Eq. 2 probability for a trailing segment to confirm a
        pattern prefix (the paper's footnote 2 uses 0.9).
    min_prefix:
        Shortest prefix allowed to trigger a pattern prediction; very short
        prefixes confirm spuriously.
    require_nonconstant_prefix:
        Only fire on prefixes that contain at least two distinct cells.  A
        constant-velocity prefix (pure cruise, or a full stop) matches at
        *every* point of a route segment, so its continuation (the eventual
        turn) fires long before the manoeuvre actually starts; requiring a
        non-constant prefix restricts predictions to manoeuvres already in
        progress, which is where the motifs carry timing information.
    confirm_sigma_factor:
        Scale of the confirmation probe.  The mining ``delta`` is tiny by
        design (a grid cell), so Eq. 2 at that scale can never reach 0.9 --
        the paper's footnote leaves the scale implicit.  We probe at
        ``delta_eff = max(delta, confirm_sigma_factor * sigma)``: "the
        trailing segment is within the pattern's positions at the tracking
        error scale with probability >= threshold".
    prob_model:
        Geometry of ``Prob`` (box by default, matching the miner).
    """

    def __init__(
        self,
        patterns: Sequence[TrajectoryPattern],
        grid: Grid,
        delta: float,
        confirm_threshold: float = 0.9,
        min_prefix: int = 2,
        confirm_sigma_factor: float = 2.5,
        require_nonconstant_prefix: bool = True,
        prob_model: ProbModel = ProbModel.BOX,
    ) -> None:
        if not 0.0 < confirm_threshold <= 1.0:
            raise ValueError("confirm_threshold must be in (0, 1]")
        if min_prefix < 1:
            raise ValueError("min_prefix must be at least 1")
        if confirm_sigma_factor <= 0:
            raise ValueError("confirm_sigma_factor must be positive")
        self.grid = grid
        self.delta = delta
        self.confirm_threshold = confirm_threshold
        self.min_prefix = min_prefix
        self.confirm_sigma_factor = confirm_sigma_factor
        self.require_nonconstant_prefix = require_nonconstant_prefix
        self.prob_model = prob_model
        self.n_queries = 0
        self.n_confirmations = 0
        # Only patterns that can both be confirmed (prefix >= min_prefix)
        # and still predict a next position (length > min_prefix) are usable.
        self.patterns = [p for p in patterns if len(p) > min_prefix and not p.has_wildcards]
        # All (pattern, prefix-length) confirmation candidates, flattened
        # for one-call vectorised evaluation (shared with the forecaster
        # and the serving layer; see repro.apps.confirm).
        self._index = ConfirmationIndex(self.patterns, grid, min_prefix)
        self.max_prefix = max((len(p) - 1 for p in self.patterns), default=0)

    def __len__(self) -> int:
        return len(self.patterns)

    def predict_next_velocity(
        self, recent_velocities: np.ndarray, sigma: float
    ) -> np.ndarray | None:
        """Best pattern continuation for a trailing velocity history.

        Parameters
        ----------
        recent_velocities:
            ``(h, 2)`` array of the server's most recent velocity
            estimates, oldest first.
        sigma:
            Standard deviation of each velocity estimate.

        Returns the predicted next velocity (a cell centre) of the
        highest-confidence confirmed (pattern, prefix) pair, or ``None``
        when nothing confirms.
        """
        recent_velocities = np.asarray(recent_velocities, dtype=float)
        h = len(recent_velocities)
        if h < self.min_prefix or not self.patterns:
            return None
        self.n_queries += 1

        delta_eff = max(self.delta, self.confirm_sigma_factor * float(sigma))
        # Longest confirmed context wins (ties by confidence): two patterns
        # sharing a short prefix but diverging afterwards are disambiguated
        # by how much history they explain, like a variable-order Markov
        # predictor.  Confidence is the geometric-mean (per-position) Eq. 2
        # probability: the raw product shrinks with q, so a fixed threshold
        # would forbid exactly the long contexts that carry information --
        # the same length effect NM itself normalises away (Eq. 3).  All
        # candidates are evaluated in one vectorised pass.
        best = self._index.best_candidate(
            recent_velocities,
            sigma,
            delta_eff,
            self.prob_model,
            self.confirm_threshold,
            require_nonconstant=self.require_nonconstant_prefix,
        )
        if best is None:
            return None
        self.n_confirmations += 1
        return self._index.next_center[best].copy()


def pattern_override(
    library: PatternLibrary,
    velocity_sigma: float,
    min_deviation: float = 0.0,
    recency: int | None = None,
) -> Callable[[int, np.ndarray, MotionModel, np.ndarray], np.ndarray | None]:
    """Build the ``override_prediction`` hook for :func:`dead_reckon`.

    The hook derives the recent velocity history from the server's own
    position estimates, asks the library for a confirmed continuation and,
    when one exists, predicts ``last estimate + pattern velocity``.

    Two gates keep the patterns from degrading the base model:

    * ``min_deviation`` keeps the base model in charge whenever the pattern
      agrees with it: the model's continuous prediction is strictly more
      precise than a grid-cell centre during steady motion, so patterns
      only take over when they forecast a manoeuvre the model cannot (a
      velocity change of at least ``min_deviation``).
    * ``recency`` optionally restricts pattern firing to the ticks right
      after a delivered report (``None``, the default, disables the gate).
      With report-interpolated mining data the patterns chain safely
      through whole manoeuvres, so the gate is usually unnecessary; it is
      kept for ablations.
    """

    def override(
        t: int,
        estimates: np.ndarray,
        model: MotionModel,
        delivered: np.ndarray,
    ) -> np.ndarray | None:
        h = library.max_prefix
        if len(estimates) < 2 or h == 0:
            return None
        if recency is not None:
            # delivered[0] is the handshake, not a manoeuvre signal.
            recent = delivered[max(1, t - recency) : t]
            if not recent.any():
                return None
        window = estimates[-(h + 1) :]
        velocities = np.diff(window, axis=0)
        v_next = library.predict_next_velocity(velocities, velocity_sigma)
        if v_next is None:
            return None
        if min_deviation > 0.0:
            v_model = np.asarray(model.predict(float(t))) - estimates[-1]
            if float(np.hypot(*(v_next - v_model))) < min_deviation:
                return None
        return estimates[-1] + v_next

    return override


@dataclass
class PredictionComparison:
    """Mis-prediction counts with and without pattern augmentation."""

    base_mispredictions: int
    augmented_mispredictions: int
    n_paths: int

    @property
    def reduction(self) -> float:
        """Fraction of mis-predictions removed by the patterns (Fig. 3's y-axis)."""
        if self.base_mispredictions == 0:
            return 0.0
        saved = self.base_mispredictions - self.augmented_mispredictions
        return saved / self.base_mispredictions


def compare_prediction(
    paths: Sequence[GroundTruthPath],
    model_factory: Callable[[], MotionModel],
    config: ReportingConfig,
    library: PatternLibrary,
    seed: int = 0,
    min_deviation: float | None = None,
    recency: int | None = None,
) -> PredictionComparison:
    """Track ``paths`` twice -- base model vs pattern-augmented -- and compare.

    Both runs see identical uplink-loss randomness (same seed) so the only
    difference is the prediction rule.  ``min_deviation`` defaults to half
    the uncertainty distance: the pattern must forecast a manoeuvre of at
    least ``U / 2`` to take over from the base model.  ``recency`` is the
    post-report firing window (see :func:`pattern_override`).
    """
    velocity_sigma = float(np.sqrt(2.0)) * config.sigma
    if min_deviation is None:
        min_deviation = config.uncertainty / 2.0
    override = pattern_override(
        library, velocity_sigma, min_deviation=min_deviation, recency=recency
    )

    base_total = 0
    augmented_total = 0
    for i, path in enumerate(paths):
        base_log = dead_reckon(
            path, model_factory(), config, rng=np.random.default_rng(seed + i)
        )
        aug_log = dead_reckon(
            path,
            model_factory(),
            config,
            rng=np.random.default_rng(seed + i),
            override_prediction=override,
        )
        base_total += base_log.n_mispredictions
        augmented_total += aug_log.n_mispredictions
    return PredictionComparison(
        base_mispredictions=base_total,
        augmented_mispredictions=augmented_total,
        n_paths=len(paths),
    )
