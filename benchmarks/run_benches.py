"""Thin shim: the bench suite now lives in :mod:`repro.bench`.

Kept so the historical invocation keeps working::

    PYTHONPATH=src python benchmarks/run_benches.py [--sections engine,serve]

New code should prefer ``repro bench`` (see ``repro bench --help``) or
``python -m repro.bench``; both drive the same suite and append to the
same ``BENCH_engine.json`` / ``BENCH_serve.json`` history files.
"""

from __future__ import annotations

from repro.bench import (  # noqa: F401  (re-exported for older scripts)
    ENGINE_WORKLOAD,
    bench_candidate_eval,
    bench_index_build,
    bench_index_cache,
    bench_kernel_backends,
    bench_mining,
    bench_obs_overhead,
    bench_parallel_scaling,
    bench_serve,
    main,
    run,
    run_serve,
)

if __name__ == "__main__":
    main()
