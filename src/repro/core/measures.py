"""Scalar reference implementation of the match / NM measures (section 3.3).

These functions compute Eq. 2 - Eq. 4 directly from their definitions, one
pattern and one trajectory at a time.  They are deliberately simple: the
vectorised :class:`~repro.core.engine.NMEngine` is validated against them in
the test suite, and they remain the readable specification of the measures.

Conventions shared with the engine (documented in DESIGN.md):

* all probabilities live in log-space;
* each per-position probability is floored at ``exp(min_log_prob)`` so a
  single impossible position keeps the NM finite;
* a trajectory shorter than the pattern has no window, and its NM defaults
  to the floor ``min_log_prob`` (the worst possible per-position value);
* a wildcard position matches anything (probability 1) and does not count
  toward the normalising length, keeping padded patterns comparable to
  their unpadded cores.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import ProbModel, prob_within

#: Default per-position probability floor (log of 1e-9); see DESIGN.md.
DEFAULT_MIN_LOG_PROB: float = math.log(1e-9)


def position_log_probs(
    pattern: TrajectoryPattern,
    window: UncertainTrajectory,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> np.ndarray:
    """Per-position ``log Prob(l_i, sigma_i, p_i, delta)`` for a window of equal length.

    Wildcard positions contribute ``log 1 = 0``.
    """
    if len(window) != len(pattern):
        raise ValueError(
            f"window length {len(window)} != pattern length {len(pattern)}"
        )
    cells = np.asarray(pattern.cells, dtype=np.int64)
    out = np.zeros(len(cells))
    specified = cells != WILDCARD
    if specified.any():
        centers = grid.cell_centers(cells[specified])
        probs = prob_within(
            window.means[specified], window.sigmas[specified], centers, delta, model=model
        )
        with np.errstate(divide="ignore"):
            logs = np.where(probs > 0, np.log(np.maximum(probs, 1e-300)), -np.inf)
        out[specified] = np.maximum(logs, min_log_prob)
    return out


def match_pattern_window(
    pattern: TrajectoryPattern,
    window: UncertainTrajectory,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """Eq. 2: ``M(P, T')``, the joint probability over an equal-length window."""
    return float(
        np.exp(
            position_log_probs(pattern, window, grid, delta, model, min_log_prob).sum()
        )
    )


def nm_pattern_window(
    pattern: TrajectoryPattern,
    window: UncertainTrajectory,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """Eq. 3: ``NM(P, T') = log M(P, T') / m`` (m = specified positions)."""
    logs = position_log_probs(pattern, window, grid, delta, model, min_log_prob)
    m = len(pattern.specified_positions())
    if m == 0:
        return 0.0  # an all-wildcard pattern matches everything perfectly
    return float(logs.sum() / m)


def nm_pattern_trajectory(
    pattern: TrajectoryPattern,
    trajectory: UncertainTrajectory,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """Eq. 4: max NM over all contiguous windows of the pattern's length."""
    m = len(pattern)
    if len(trajectory) < m:
        return min_log_prob
    return max(
        nm_pattern_window(
            pattern, trajectory.window(start, m), grid, delta, model, min_log_prob
        )
        for start in range(len(trajectory) - m + 1)
    )


def match_pattern_trajectory(
    pattern: TrajectoryPattern,
    trajectory: UncertainTrajectory,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """The un-normalised match of [14]: max window joint probability."""
    m = len(pattern)
    if len(trajectory) < m:
        return math.exp(min_log_prob * len(pattern.specified_positions()))
    return max(
        match_pattern_window(
            pattern, trajectory.window(start, m), grid, delta, model, min_log_prob
        )
        for start in range(len(trajectory) - m + 1)
    )


def nm_pattern_dataset(
    pattern: TrajectoryPattern,
    dataset: TrajectoryDataset,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """``NM(P) = sum over trajectories of NM(P, T)`` (section 3.3)."""
    return sum(
        nm_pattern_trajectory(pattern, t, grid, delta, model, min_log_prob)
        for t in dataset
    )


def match_pattern_dataset(
    pattern: TrajectoryPattern,
    dataset: TrajectoryDataset,
    grid: Grid,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    min_log_prob: float = DEFAULT_MIN_LOG_PROB,
) -> float:
    """Dataset match: sum of per-trajectory max window probabilities."""
    return sum(
        match_pattern_trajectory(pattern, t, grid, delta, model, min_log_prob)
        for t in dataset
    )


def minmax_upper_bound(
    nm_left: float, len_left: int, nm_right: float, len_right: int
) -> float:
    """The weighted-mean bound from the min-max property's proof (Property 1).

    ``NM(P_left + P_right) <= (i * NM(P_left) + j * NM(P_right)) / (i + j)``,
    which is itself at most ``max(NM(P_left), NM(P_right))``.  The miner uses
    this tighter middle term as an optional candidate pre-filter.
    """
    if len_left <= 0 or len_right <= 0:
        raise ValueError("pattern lengths must be positive")
    return (len_left * nm_left + len_right * nm_right) / (len_left + len_right)
