"""Online query serving for mined pattern libraries (``repro serve``).

This package is the system's *online* half: everything under
:mod:`repro.core` mines and scores patterns offline; ``repro.serve``
exposes the same measure engine and the pattern-augmented prediction of
paper section 6 as a long-running network service.

Pieces (bottom-up):

* :mod:`repro.serve.protocol` -- the newline-delimited-JSON request /
  response protocol and its validation;
* :mod:`repro.serve.batcher` -- the adaptive micro-batcher: concurrent
  requests coalesce into single :meth:`~repro.core.engine.NMEngine.nm_batch`
  calls, with deadline-aware admission control and load shedding;
* :mod:`repro.serve.snapshot` -- immutable versioned serving state
  (dataset + engine + pattern library) and the store that hot-swaps it;
* :mod:`repro.serve.server` -- the asyncio TCP server tying the above
  together with the observability layer;
* :mod:`repro.serve.loadgen` -- the open/closed-loop load generator
  behind ``repro loadgen``.

Naming note: :class:`repro.mobility.server.FleetTracker` (historically
``TrackingServer``) is the *paper's* dead-reckoning location tracker --
a simulation component, not a network service.  This package is the only
thing in the repository that serves queries.
"""

from repro.serve.batcher import BatchStats, MicroBatcher, OverloadedError
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.serve.server import IngestConfig, PatternServer, ServeConfig
from repro.serve.snapshot import ServingSnapshot, SnapshotStore

__all__ = [
    "BatchStats",
    "IngestConfig",
    "LoadgenConfig",
    "MAX_LINE_BYTES",
    "MicroBatcher",
    "OverloadedError",
    "PatternServer",
    "ProtocolError",
    "ServeConfig",
    "ServingSnapshot",
    "SnapshotStore",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "run_loadgen",
]
