"""Direct observation of ground-truth paths as uncertain trajectories.

The faithful route from ground truth to mining input is the dead-reckoning
server (:mod:`repro.mobility`), but the scalability experiments of Fig. 4
only need data of the right *shape* at controlled sizes; for them it is
both sufficient and much faster to attach the observation uncertainty
directly: the snapshot mean is the true position perturbed by the tracking
error and the sigma is the nominal ``U / c``.  This mirrors what the
server's estimates look like statistically without simulating the protocol
tick by tick.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mobility.objects import GroundTruthPath
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def observe_paths(
    paths: Sequence[GroundTruthPath],
    sigma: float,
    rng: np.random.Generator | None = None,
    perturb: bool = True,
) -> TrajectoryDataset:
    """Turn ground-truth paths into an uncertain trajectory dataset.

    Parameters
    ----------
    paths:
        The ground-truth paths.
    sigma:
        Snapshot standard deviation assigned to every estimate (``U / c``).
    rng:
        Randomness for the tracking-error perturbation; required when
        ``perturb`` is true.
    perturb:
        When true (default), snapshot means are the true positions plus
        ``N(0, sigma^2)`` tracking error -- the statistical signature of a
        dead-reckoning server.  When false, means are the exact positions
        (useful for noiseless oracle tests).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if perturb and rng is None:
        raise ValueError("rng is required when perturb is true")

    trajectories = []
    for path in paths:
        means = path.positions
        if perturb:
            means = means + rng.normal(scale=sigma, size=means.shape)
        trajectories.append(
            UncertainTrajectory(means, sigma, object_id=path.object_id)
        )
    return TrajectoryDataset(
        trajectories, metadata={"kind": "location", "sigma": sigma}
    )
