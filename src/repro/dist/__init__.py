"""Cross-machine mining and serving (``repro.dist``).

The single-box scaling rungs stop at ``fork`` + ``/dev/shm``
(:mod:`repro.core.parallel`) and one :class:`~repro.serve.server.PatternServer`
replica.  This package promotes both boundaries onto sockets:

* :mod:`repro.dist.wire` -- the worker wire protocol: the NDJSON framing
  of :mod:`repro.serve.protocol` carrying the ``parallel`` worker op set,
  plus exact JSON codecs for grids, engine configs, extension tables and
  gap patterns (JSON round-trips float64 bit-exactly, which is what lets
  a socket hop preserve the 0-ULP merge contract);
* :mod:`repro.dist.worker` -- ``repro worker --listen``: a worker-pool
  process that opens its assigned ``.tjc`` spans *locally* (the
  coordinator ships ``(store_hash, lo, hi)`` + grid/config/kernel tag,
  never data) and answers pipelined ops;
* :mod:`repro.dist.coordinator` -- :class:`DistNMEngine`: the
  ``ParallelNMEngine`` surface over a mixed set of local-fork and remote
  pools, reusing the exact-merge functions of :mod:`repro.core.parallel`
  verbatim so all three miners run unchanged; a crashed or timed-out
  pool's spans are re-dispatched to survivors with bit-identical results;
* :mod:`repro.dist.router` -- ``repro router``: a serving tier that fans
  client requests across N ``PatternServer`` replicas by least queue
  depth, broadcasts ``swap`` so every replica serves the same snapshot
  generation, and aggregates ``stats``.

See ``docs/DISTRIBUTED.md`` for the op catalogue and failure model.
"""

from repro.dist.coordinator import (
    DistNMEngine,
    DistPoolError,
    LocalPool,
    RemotePool,
    parse_pool_spec,
)
from repro.dist.router import RouterConfig, PatternRouter, publish_snapshot
from repro.dist.wire import DIST_OPS, DIST_PROTOCOL_VERSION
from repro.dist.worker import WorkerPoolConfig, WorkerPoolServer

__all__ = [
    "DIST_OPS",
    "DIST_PROTOCOL_VERSION",
    "DistNMEngine",
    "DistPoolError",
    "LocalPool",
    "PatternRouter",
    "RemotePool",
    "RouterConfig",
    "WorkerPoolConfig",
    "WorkerPoolServer",
    "parse_pool_spec",
    "publish_snapshot",
]
