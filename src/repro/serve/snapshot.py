"""Immutable versioned serving state and its hot-swappable store.

A :class:`ServingSnapshot` bundles everything one generation of the server
needs to answer queries: the dataset, the grid, a fully built
:class:`~repro.core.engine.NMEngine` and (optionally) a
:class:`~repro.apps.prediction.PatternLibrary` for the ``predict`` op.
Snapshots are immutable once constructed -- the server never mutates one,
it *replaces* the store's current reference atomically.  Requests capture
the snapshot reference at admission, so an in-flight batch always
evaluates against the generation that admitted it even if a ``swap``
lands mid-batch; the old generation is garbage-collected once its last
in-flight request drains.

Loading goes through :mod:`repro.core.index_cache` when a ``cache_dir``
is configured: the first boot of a snapshot persists its built index, so
swapping back to a previously served dataset (or restarting the server)
skips the probability enumeration entirely.  Offline mining runs pointed
at the same cache directory share the files in both directions.

On disk a snapshot is either a bare dataset file (JSONL or a ``.tjc``
columnar store, sniffed by magic) or a directory:

``dataset.tjc`` / ``dataset.jsonl``
    one required -- the uncertain trajectories to serve
    (:mod:`repro.trajectory.io` / :mod:`repro.storage`); ``dataset.tjc``
    wins when both exist.  Store-backed snapshots open in O(footer) and
    stream trajectories on demand, so swapping to a huge dataset does not
    double-buffer it in RAM.
``patterns.json``
    optional -- a mining result (:mod:`repro.core.results_io`); enables
    the ``predict`` op and pins the pattern grid.
``serve.json``
    optional -- overrides: ``{"version": ..., "cell_size": ...,
    "delta": ..., "min_prob": ..., "confirm_threshold": ...,
    "min_prefix": ..., "backend": ..., "dtype": ..., "store": ...}``.
    Anything absent falls back to the section 5 parameter suggestions
    derived from the dataset; ``backend``/``dtype`` select the kernel
    backend (:mod:`repro.core.kernels`) the snapshot's engine evaluates
    on; ``store`` names a ``.tjc`` file (relative to the directory) to
    serve instead of the ``dataset.*`` convention.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any

import numpy as np

from repro.apps.prediction import PatternLibrary
from repro.core import index_cache, kernels
from repro.core.engine import EngineConfig, NMEngine
from repro.core.parameters import suggest_parameters
from repro.core.results_io import load_mining_result
from repro.geometry.grid import Grid
from repro.obs import logs
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import load_dataset_jsonl

_log = logs.get_logger("serve.snapshot")

#: serve.json keys accepted by :meth:`ServingSnapshot.load`.
_CONFIG_KEYS = (
    "version",
    "cell_size",
    "delta",
    "min_prob",
    "confirm_threshold",
    "min_prefix",
    "backend",
    "dtype",
    "store",
)


class ServingSnapshot:
    """One immutable generation of serving state.

    Build via :meth:`load` (from disk) or :meth:`from_dataset` (in
    process); the constructor itself just pins the already-built pieces.
    """

    __slots__ = (
        "version",
        "source",
        "dataset",
        "grid",
        "engine",
        "library",
        "delta",
        "owned_store",
        "_ref_lock",
        "_refs",
        "_retired",
        "_closed",
    )

    def __init__(
        self,
        version: str,
        dataset: TrajectoryDataset,
        grid: Grid,
        engine: NMEngine,
        library: PatternLibrary | None = None,
        source: str = "<memory>",
        owned_store: Any | None = None,
    ) -> None:
        self.version = version
        self.dataset = dataset
        self.grid = grid
        self.engine = engine
        self.library = library
        self.delta = engine.config.delta
        self.source = source
        # Resource lifecycle: a store-backed snapshot owns the open ``.tjc``
        # handle its lazy dataset reads through.  Dropping the snapshot
        # reference alone leaks the fd/mmap, so retirement is refcounted:
        # ``retain``/``release`` bracket every admission that may still read
        # the dataset, ``retire`` marks the generation replaced, and the
        # store closes exactly once, when both have happened.
        self.owned_store = owned_store
        self._ref_lock = threading.Lock()
        self._refs = 0
        self._retired = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def retain(self) -> "ServingSnapshot":
        """Pin the snapshot for one in-flight admission; pair with release."""
        with self._ref_lock:
            # Only a snapshot whose backing store is actually gone must
            # refuse work; a retired in-memory generation swapped back in
            # (tests and blue/green flips do this) is still fully readable.
            if self._closed and self.owned_store is not None:
                raise RuntimeError(
                    f"snapshot {self.version} is closed; cannot admit new work"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one admission pin; closes a retired snapshot once drained."""
        with self._ref_lock:
            if self._refs <= 0:
                raise RuntimeError(
                    f"snapshot {self.version}: release without matching retain"
                )
            self._refs -= 1
            should_close = self._retired and self._refs == 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self._close_store()

    def retire(self) -> None:
        """Mark the generation replaced; closes now or when in-flight drains."""
        with self._ref_lock:
            if self._retired:
                return
            self._retired = True
            should_close = self._refs == 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self._close_store()

    @property
    def closed(self) -> bool:
        """True once the owned store (if any) has been closed."""
        with self._ref_lock:
            return self._closed

    @property
    def inflight(self) -> int:
        """Current number of unreleased admissions (introspection/tests)."""
        with self._ref_lock:
            return self._refs

    def _close_store(self) -> None:
        if self.owned_store is None:
            return
        try:
            self.owned_store.close()
        except Exception:  # noqa: BLE001 - closing must never kill serving
            _log.warning(
                "snapshot store close failed",
                extra={"version": self.version, "source": self.source},
                exc_info=True,
            )
        else:
            _log.info(
                "snapshot store closed",
                extra={"version": self.version, "source": self.source},
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset: TrajectoryDataset,
        *,
        patterns_path: str | Path | None = None,
        cell_size: float | None = None,
        delta: float | None = None,
        min_prob: float = 1e-6,
        cache_dir: str | Path | None = None,
        confirm_threshold: float = 0.9,
        min_prefix: int = 2,
        backend: str = "auto",
        dtype: str = "float64",
        version: str | None = None,
        source: str = "<memory>",
        owned_store: Any | None = None,
    ) -> "ServingSnapshot":
        """Build a snapshot from an in-memory dataset.

        ``cell_size`` / ``delta`` default to the section 5 suggestions
        derived from the dataset; ``version`` defaults to the index cache
        key (a content hash -- identical inputs get identical versions).
        ``backend`` / ``dtype`` pick the kernel backend the snapshot's
        engine evaluates on (serving defaults to ``"auto"``: compiled
        when the machine has a toolchain, numpy otherwise).
        """
        if cell_size is None or delta is None:
            suggested = suggest_parameters(dataset)
            cell_size = cell_size if cell_size is not None else suggested.cell_size
            delta = delta if delta is not None else suggested.delta
        grid = dataset.make_grid(cell_size)
        config = EngineConfig(
            delta=delta,
            min_prob=min_prob,
            cache_dir=cache_dir,
            backend=backend,
            dtype=dtype,
        )
        key = index_cache.cache_key(
            dataset, grid, config, kernel_tag=kernels.prob_kernel_tag(config)
        )
        if version is None:
            version = key[:12]
        # ensure_index goes through the on-disk cache when cache_dir is
        # set; the prebuilt arrays then make NMEngine construction cheap.
        prebuilt = index_cache.ensure_index(dataset, grid, config)
        engine = NMEngine(dataset, grid, config, prebuilt=prebuilt)
        library = None
        if patterns_path is not None:
            result, pattern_grid = load_mining_result(patterns_path)
            library = PatternLibrary(
                result.patterns,
                pattern_grid,
                delta=delta,
                confirm_threshold=confirm_threshold,
                min_prefix=min_prefix,
            )
        snapshot = cls(
            version,
            dataset,
            grid,
            engine,
            library=library,
            source=source,
            owned_store=owned_store,
        )
        _log.info(
            "snapshot built",
            extra={
                "version": version,
                "n_trajectories": len(dataset),
                "n_cells": grid.n_cells,
                "n_patterns": len(library) if library is not None else 0,
                "source": source,
                "backend": engine.backend_name,
                "dtype": engine.backend_dtype,
            },
        )
        return snapshot

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        cache_dir: str | Path | None = None,
        backend: str = "auto",
        dtype: str = "float64",
    ) -> "ServingSnapshot":
        """Load a snapshot from ``path`` (dataset file or snapshot directory).

        ``backend`` / ``dtype`` are the operator-level defaults (e.g. the
        ``repro serve --backend`` flags); a ``serve.json`` carrying its own
        ``backend``/``dtype`` keys wins, since those are pinned per
        snapshot.
        """
        from repro.storage import is_store_path, open_store

        path = Path(path)
        overrides: dict[str, Any] = {}
        patterns_path: Path | None = None
        if path.is_dir():
            candidate = path / "patterns.json"
            if candidate.is_file():
                patterns_path = candidate
            config_path = path / "serve.json"
            if config_path.is_file():
                raw = json.loads(config_path.read_text(encoding="utf-8"))
                if not isinstance(raw, dict):
                    raise ValueError(f"{config_path}: must be a JSON object")
                unknown = set(raw) - set(_CONFIG_KEYS)
                if unknown:
                    raise ValueError(
                        f"{config_path}: unknown keys {sorted(unknown)}"
                    )
                overrides = raw
            if overrides.get("store") is not None:
                dataset_path = path / str(overrides.pop("store"))
                if not dataset_path.is_file():
                    raise ValueError(
                        f"{path}: serve.json store {dataset_path.name!r} not found"
                    )
            elif (path / "dataset.tjc").is_file():
                dataset_path = path / "dataset.tjc"
            elif (path / "dataset.jsonl").is_file():
                dataset_path = path / "dataset.jsonl"
            else:
                raise ValueError(
                    f"{path}: snapshot directory has no dataset.tjc or "
                    "dataset.jsonl"
                )
        else:
            dataset_path = path
        owned_store = None
        if is_store_path(dataset_path):
            # Lazy store-backed dataset: the snapshot owns the open store
            # handle and closes it on refcounted retirement (see __init__),
            # so a republish-every-minute server does not leak fds.
            owned_store = open_store(dataset_path)
            dataset = owned_store.dataset()
        else:
            dataset = load_dataset_jsonl(dataset_path)
        kwargs: dict[str, Any] = {"backend": backend, "dtype": dtype}
        for numeric in ("cell_size", "delta", "min_prob", "confirm_threshold"):
            if overrides.get(numeric) is not None:
                kwargs[numeric] = float(overrides[numeric])
        if overrides.get("min_prefix") is not None:
            kwargs["min_prefix"] = int(overrides["min_prefix"])
        for text in ("version", "backend", "dtype"):
            if overrides.get(text) is not None:
                kwargs[text] = str(overrides[text])
        return cls.from_dataset(
            dataset,
            patterns_path=patterns_path,
            cache_dir=cache_dir,
            source=str(path),
            owned_store=owned_store,
            **kwargs,
        )

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict:
        """The ``describe`` op payload: enough for a client to form queries."""
        active = self.engine.active_cells
        sample = active[:: max(1, len(active) // 64)][:64]
        return {
            "version": self.version,
            "source": self.source,
            "n_trajectories": len(self.dataset),
            "total_snapshots": self.dataset.total_snapshots(),
            "grid": {
                "nx": self.grid.nx,
                "ny": self.grid.ny,
                "n_cells": self.grid.n_cells,
                "min_x": self.grid.bbox.min_x,
                "min_y": self.grid.bbox.min_y,
                "max_x": self.grid.bbox.max_x,
                "max_y": self.grid.bbox.max_y,
            },
            "delta": self.delta,
            "backend": self.engine.backend_name,
            "dtype": self.engine.backend_dtype,
            "n_active_cells": len(active),
            "sample_active_cells": [int(c) for c in sample],
            "has_patterns": self.library is not None,
            "n_patterns": len(self.library) if self.library is not None else 0,
            "sigma_typical": float(np.median(self.dataset.all_sigmas())),
        }


class SnapshotStore:
    """Atomic holder of the current :class:`ServingSnapshot`.

    ``swap`` replaces the reference under a lock and returns the previous
    generation; readers grab :attr:`current` without locking (attribute
    reads are atomic in CPython) for metadata, while evaluation paths that
    may still *read the dataset* after a swap go through
    :meth:`acquire`/:meth:`release` -- the pin is taken under the same lock
    as ``swap``, so a retiring generation can never close its backing store
    between admission and evaluation.  ``swap`` retires the replaced
    generation: its store-backed resources close once the last in-flight
    admission drains (immediately when there are none).
    """

    def __init__(self, snapshot: ServingSnapshot) -> None:
        self._current = snapshot
        self._lock = threading.Lock()
        self.swaps = 0

    @property
    def current(self) -> ServingSnapshot:
        return self._current

    def acquire(self) -> ServingSnapshot:
        """Pin and return the current generation; pair with :meth:`release`."""
        with self._lock:
            return self._current.retain()

    @staticmethod
    def release(snapshot: ServingSnapshot) -> None:
        """Drop an :meth:`acquire` pin (closes a drained retired generation)."""
        snapshot.release()

    def swap(self, snapshot: ServingSnapshot) -> ServingSnapshot:
        """Install ``snapshot``; retires and returns the replaced generation."""
        with self._lock:
            previous = self._current
            self._current = snapshot
            self.swaps += 1
        _log.info(
            "snapshot swapped",
            extra={"from": previous.version, "to": snapshot.version},
        )
        previous.retire()
        return previous
