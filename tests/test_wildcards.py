"""Tests for gap patterns (section 5's variable wild-card runs)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.wildcards import (
    Gap,
    GapPattern,
    nm_gap_pattern,
    nm_gap_pattern_trajectory,
)
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def corridor_engine():
    """Objects crossing a 5x1 corridor with a variable-length middle."""
    rng = np.random.default_rng(5)
    grid = Grid(BoundingBox(0.0, 0.0, 1.0, 0.2), nx=5, ny=1)
    trajectories = []
    for i in range(6):
        # Enter at cell 0/1, loiter in the middle 1-2 snapshots, exit 3/4.
        n_loiter = 1 + (i % 2)
        xs = [0.1, 0.3] + [0.5] * n_loiter + [0.7, 0.9]
        means = np.column_stack([xs, np.full(len(xs), 0.1)])
        means = means + rng.normal(0, 0.01, means.shape)
        trajectories.append(UncertainTrajectory(means, 0.06))
    dataset = TrajectoryDataset(trajectories)
    return NMEngine(dataset, grid, EngineConfig(delta=0.2, min_prob=1e-5))


class TestGapValidation:
    def test_gap_bounds(self):
        with pytest.raises(ValueError):
            Gap(-1, 2)
        with pytest.raises(ValueError):
            Gap(3, 2)

    def test_pattern_structure(self):
        seg = TrajectoryPattern((1,))
        with pytest.raises(ValueError):
            GapPattern((), ())
        with pytest.raises(ValueError):
            GapPattern((seg, seg), ())  # missing gap
        with pytest.raises(ValueError):
            GapPattern((TrajectoryPattern((1, WILDCARD)),), ())

    def test_spans(self):
        pattern = GapPattern(
            (TrajectoryPattern((1, 2)), TrajectoryPattern((3,))),
            (Gap(1, 3),),
        )
        assert pattern.n_specified == 3
        assert pattern.min_span() == 4
        assert pattern.max_span() == 6


class TestParse:
    def test_round_trip(self):
        pattern = GapPattern.parse("3 5 [0-2] 9 9")
        assert [s.cells for s in pattern.segments] == [(3, 5), (9, 9)]
        assert pattern.gaps == (Gap(0, 2),)

    def test_no_leading_gap(self):
        with pytest.raises(ValueError):
            GapPattern.parse("[0-1] 3")

    def test_no_trailing_gap(self):
        with pytest.raises(ValueError):
            GapPattern.parse("3 [0-1]")

    def test_solid_only(self):
        pattern = GapPattern.parse("1 2 3")
        assert pattern.gaps == ()
        assert pattern.min_span() == 3


class TestEvaluation:
    def test_zero_gap_equals_solid_pattern(self, corridor_engine):
        solid = TrajectoryPattern((0, 1, 2))
        gap = GapPattern(
            (TrajectoryPattern((0, 1)), TrajectoryPattern((2,))), (Gap(0, 0),)
        )
        assert nm_gap_pattern(corridor_engine, gap) == pytest.approx(
            corridor_engine.nm(solid), abs=1e-9
        )

    def test_gap_brackets_fixed_wildcards(self, corridor_engine):
        """A [1-1] gap scores exactly like one fixed WILDCARD position."""
        fixed = TrajectoryPattern((1, WILDCARD, 3))
        gap = GapPattern(
            (TrajectoryPattern((1,)), TrajectoryPattern((3,))), (Gap(1, 1),)
        )
        assert nm_gap_pattern(corridor_engine, gap) == pytest.approx(
            corridor_engine.nm(fixed), abs=1e-9
        )

    def test_variable_gap_absorbs_loiter(self, corridor_engine):
        """Half the corridor objects loiter 1 snapshot, half 2; a [1-2] gap
        covers both, beating either fixed-wildcard variant."""
        flexible = GapPattern(
            (TrajectoryPattern((0, 1)), TrajectoryPattern((3, 4))), (Gap(1, 2),)
        )
        fixed_one = corridor_engine.nm(TrajectoryPattern((0, 1, WILDCARD, 3, 4)))
        fixed_two = corridor_engine.nm(
            TrajectoryPattern((0, 1, WILDCARD, WILDCARD, 3, 4))
        )
        flexible_nm = nm_gap_pattern(corridor_engine, flexible)
        assert flexible_nm >= fixed_one - 1e-9
        assert flexible_nm >= fixed_two - 1e-9
        assert flexible_nm > max(fixed_one, fixed_two)

    def test_gap_is_max_over_alignments(self, corridor_engine):
        """[a-b] gap NM equals the max over the fixed-length alternatives."""
        flexible = GapPattern(
            (TrajectoryPattern((1,)), TrajectoryPattern((3,))), (Gap(0, 2),)
        )
        for traj_index in range(len(corridor_engine.dataset)):
            alternatives = [
                corridor_engine.best_window(TrajectoryPattern((1, 3)), traj_index),
                corridor_engine.best_window(
                    TrajectoryPattern((1, WILDCARD, 3)), traj_index
                ),
                corridor_engine.best_window(
                    TrajectoryPattern((1, WILDCARD, WILDCARD, 3)), traj_index
                ),
            ]
            best_fixed = max(nm for res in alternatives if res for _, nm in [res])
            got = nm_gap_pattern_trajectory(corridor_engine, flexible, traj_index)
            assert got == pytest.approx(best_fixed, abs=1e-9)

    def test_too_short_trajectory_scores_floor(self, corridor_engine):
        long_pattern = GapPattern(
            (TrajectoryPattern((0, 1, 2)), TrajectoryPattern((3, 4))),
            (Gap(3, 5),),
        )
        # min span = 8 > trajectory length (5 or 6) for some objects.
        short_index = 0
        assert len(corridor_engine.dataset[short_index]) < long_pattern.min_span()
        assert nm_gap_pattern_trajectory(
            corridor_engine, long_pattern, short_index
        ) == corridor_engine.floor_log_prob
