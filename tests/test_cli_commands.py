"""End-to-end tests for the library CLI commands (mine / score / suggest)."""

import json

import numpy as np
import pytest

import repro.cli as cli
from repro.datagen.observe import observe_paths
from repro.datagen.random_walk import correlated_random_walks
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture
def dataset_file(tmp_path):
    rng = np.random.default_rng(5)
    paths = correlated_random_walks(8, 15, rng, step=0.03, turn_sigma=0.1)
    dataset = observe_paths(paths, sigma=0.01, rng=rng)
    path = tmp_path / "walks.jsonl"
    save_dataset_jsonl(dataset, path)
    return path


class TestSuggestCommand:
    def test_prints_section5_rules(self, dataset_file, capsys):
        assert cli.main(["suggest", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "gamma" in out and "3 sigma" in out


class TestMineCommand:
    def test_mines_and_writes_pattern_file(self, dataset_file, tmp_path, capsys):
        out_file = tmp_path / "patterns.json"
        code = cli.main(
            [
                "mine",
                str(dataset_file),
                "--output",
                str(out_file),
                "-k",
                "5",
                "--max-length",
                "3",
                "--cell-size",
                "0.03",
                "--min-prob",
                "1e-4",
                "--show",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mined 5 patterns" in out
        document = json.loads(out_file.read_text())
        assert document["format"] == "repro.mining-result"
        assert len(document["patterns"]) == 5


class TestScoreCommand:
    def test_rescores_pattern_file(self, dataset_file, tmp_path, capsys):
        out_file = tmp_path / "patterns.json"
        cli.main(
            [
                "mine",
                str(dataset_file),
                "--output",
                str(out_file),
                "-k",
                "4",
                "--max-length",
                "3",
                "--cell-size",
                "0.03",
                "--delta",
                "0.03",
                "--min-prob",
                "1e-4",
            ]
        )
        capsys.readouterr()
        code = cli.main(
            [
                "score",
                str(out_file),
                str(dataset_file),
                "--delta",
                "0.03",
                "--min-prob",
                "1e-4",
                "--show",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "re-scored 4 patterns" in out
        assert "NM" in out

    def test_score_requires_delta(self, dataset_file, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["score", "p.json", str(dataset_file)])


class TestRunAliases:
    def test_run_form_equivalent(self, monkeypatch, capsys):
        monkeypatch.setitem(cli._EXPERIMENTS, "table1", lambda scale: f"T1@{scale}")
        assert cli.main(["run", "table1", "--scale", "small"]) == 0
        assert "T1@small" in capsys.readouterr().out
