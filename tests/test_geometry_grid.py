"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid


@pytest.fixture
def grid():
    return Grid(BoundingBox.unit(), nx=10, ny=8)


class TestConstruction:
    def test_cell_sizes(self, grid):
        assert grid.gx == pytest.approx(0.1)
        assert grid.gy == pytest.approx(1 / 8)
        assert grid.n_cells == 80
        assert len(grid) == 80

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid(BoundingBox.unit(), nx=0, ny=5)

    def test_zero_area_bbox_rejected(self):
        with pytest.raises(ValueError):
            Grid(BoundingBox(0, 0, 0, 1), nx=2, ny=2)

    def test_cover_square_cells(self):
        g = Grid.cover(BoundingBox(0, 0, 1.0, 0.55), cell_size=0.1)
        assert g.gx == pytest.approx(0.1)
        assert g.gy == pytest.approx(0.1)
        assert g.nx == 10 and g.ny == 6  # padded up on y

    def test_cover_invalid_cell_size(self):
        with pytest.raises(ValueError):
            Grid.cover(BoundingBox.unit(), cell_size=0.0)

    def test_cover_points(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        g = Grid.cover_points(pts, cell_size=0.25, margin=0.25)
        assert g.bbox.min_x == pytest.approx(-0.25)
        assert g.n_cells == 6 * 6


class TestLocate:
    def test_locate_center(self, grid):
        cell = grid.locate(0.05, 1 / 16)
        assert cell == 0

    def test_locate_roundtrip_via_center(self, grid):
        for cell in [0, 7, 35, 79]:
            c = grid.cell_center(cell)
            assert grid.locate(c.x, c.y) == cell

    def test_locate_clamps_outside(self, grid):
        assert grid.locate(-5.0, -5.0) == 0
        assert grid.locate(5.0, 5.0) == grid.n_cells - 1

    def test_locate_many_matches_scalar(self, grid):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-0.2, 1.2, size=(100, 2))
        bulk = grid.locate_many(pts)
        scalar = [grid.locate(x, y) for x, y in pts]
        assert list(bulk) == scalar

    def test_row_col(self, grid):
        assert grid.row_col(0) == (0, 0)
        assert grid.row_col(10) == (1, 0)
        assert grid.row_col(13) == (1, 3)

    def test_cell_bounds_checked(self, grid):
        with pytest.raises(IndexError):
            grid.cell_center(80)
        with pytest.raises(IndexError):
            grid.row_col(-1)


class TestSpatialQueries:
    def test_cells_near_includes_self(self, grid):
        c = grid.cell_center(35)
        cells = grid.cells_near(c.x, c.y, radius=0.01)
        assert list(cells) == [35]

    def test_cells_near_radius_one_cell(self, grid):
        c = grid.cell_center(35)
        cells = set(grid.cells_near(c.x, c.y, radius=0.13))
        assert 35 in cells
        assert cells == set(grid.neighbors(35)) | {35}

    def test_cells_in_box_empty(self, grid):
        assert len(grid.cells_in_box(2.0, 2.0, 3.0, 3.0)) == 0

    def test_cells_in_box_everything(self, grid):
        cells = grid.cells_in_box(-1, -1, 2, 2)
        assert len(cells) == grid.n_cells

    def test_cells_near_many_matches_scalar(self, grid):
        rng = np.random.default_rng(3)
        points = rng.uniform(-0.2, 1.2, (40, 2))
        radii = rng.uniform(0.0, 0.4, 40)
        cells, owners = grid.cells_near_many(points, radii)
        assert len(cells) == len(owners)
        for i, (point, radius) in enumerate(zip(points, radii)):
            expected = grid.cells_near(point[0], point[1], radius)
            got = cells[owners == i]
            assert np.array_equal(got, expected)

    def test_cells_near_many_scalar_radius(self, grid):
        points = np.array([[0.5, 0.5], [0.05, 0.05]])
        cells, owners = grid.cells_near_many(points, 0.13)
        for i in range(2):
            expected = grid.cells_near(points[i, 0], points[i, 1], 0.13)
            assert np.array_equal(cells[owners == i], expected)

    def test_cells_in_boxes_all_empty(self, grid):
        cells, owners = grid.cells_in_boxes(
            np.array([2.0, 5.0]),
            np.array([2.0, 5.0]),
            np.array([3.0, 6.0]),
            np.array([3.0, 6.0]),
        )
        assert len(cells) == 0 and len(owners) == 0

    def test_neighbors_interior(self, grid):
        assert len(grid.neighbors(35)) == 8
        assert len(grid.neighbors(35, include_diagonal=False)) == 4

    def test_neighbors_corner(self, grid):
        assert len(grid.neighbors(0)) == 3

    def test_cell_distance(self, grid):
        assert grid.cell_distance(0, 1) == pytest.approx(grid.gx)
        assert grid.cell_distance(0, 0) == 0.0


class TestProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_located_cell_center_is_close(self, x, y):
        grid = Grid(BoundingBox.unit(), nx=7, ny=9)
        cell = grid.locate(x, y)
        center = grid.cell_center(cell)
        assert abs(center.x - x) <= grid.gx / 2 + 1e-9
        assert abs(center.y - y) <= grid.gy / 2 + 1e-9

    @given(st.floats(min_value=0.01, max_value=0.6, allow_nan=False))
    def test_cells_near_contains_all_within_radius(self, radius):
        grid = Grid(BoundingBox.unit(), nx=11, ny=11)
        near = set(grid.cells_near(0.5, 0.5, radius))
        for cell in range(grid.n_cells):
            c = grid.cell_center(cell)
            if max(abs(c.x - 0.5), abs(c.y - 0.5)) <= radius:
                assert cell in near
