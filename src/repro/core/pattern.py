"""Trajectory patterns (paper section 3.3) and wildcard patterns (section 5).

A trajectory pattern ``P = (p_1, ..., p_m)`` is an ordered list of grid
positions: "the mobile object is located at p_1, ..., p_m at m consecutive
snapshots".  Positions are grid-cell identifiers (ints); the special value
:data:`WILDCARD` marks a "don't care" position that any location matches.

Patterns are immutable and hashable so they can key the candidate set ``Q``
of the miner directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.grid import Grid

#: Sentinel cell id for a "don't care" position (section 5's ``*`` symbol).
WILDCARD: int = -1


@dataclass(frozen=True, slots=True)
class TrajectoryPattern:
    """An immutable ordered list of grid positions.

    >>> p = TrajectoryPattern((3, 4, 5))
    >>> len(p), p.is_singular
    (3, False)
    >>> p.concat(TrajectoryPattern((9,))).cells
    (3, 4, 5, 9)
    """

    cells: tuple[int, ...]

    def __post_init__(self) -> None:
        cells = tuple(int(c) for c in self.cells)
        if not cells:
            raise ValueError("a pattern must have at least one position")
        if any(c < 0 and c != WILDCARD for c in cells):
            raise ValueError(f"invalid cell ids in pattern: {cells}")
        object.__setattr__(self, "cells", cells)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def singular(cls, cell: int) -> "TrajectoryPattern":
        """The length-1 pattern at ``cell`` (section 3.3's *singular pattern*)."""
        return cls((cell,))

    @classmethod
    def from_points(cls, points: np.ndarray, grid: Grid) -> "TrajectoryPattern":
        """Pattern whose positions are the grid cells containing ``points``."""
        return cls(tuple(int(c) for c in grid.locate_many(np.asarray(points, dtype=float))))

    # -- basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    def __getitem__(self, index):
        picked = self.cells[index]
        if isinstance(index, slice):
            return TrajectoryPattern(picked)
        return picked

    def __repr__(self) -> str:
        body = ", ".join("*" if c == WILDCARD else str(c) for c in self.cells)
        return f"Pattern({body})"

    # -- structure ------------------------------------------------------------------

    @property
    def is_singular(self) -> bool:
        """Whether this is a length-1 pattern."""
        return len(self.cells) == 1

    @property
    def has_wildcards(self) -> bool:
        """Whether any position is a "don't care"."""
        return WILDCARD in self.cells

    def specified_positions(self) -> list[int]:
        """Indices of non-wildcard positions."""
        return [i for i, c in enumerate(self.cells) if c != WILDCARD]

    def concat(self, other: "TrajectoryPattern") -> "TrajectoryPattern":
        """Append ``other`` to this pattern (the miner's candidate generator)."""
        return TrajectoryPattern(self.cells + other.cells)

    def drop_first(self) -> "TrajectoryPattern":
        """The proper sub-pattern with the first position removed."""
        if len(self.cells) < 2:
            raise ValueError("cannot shorten a singular pattern")
        return TrajectoryPattern(self.cells[1:])

    def drop_last(self) -> "TrajectoryPattern":
        """The proper sub-pattern with the last position removed."""
        if len(self.cells) < 2:
            raise ValueError("cannot shorten a singular pattern")
        return TrajectoryPattern(self.cells[:-1])

    def pad_wildcards(self, before: int = 0, after: int = 0) -> "TrajectoryPattern":
        """Add ``*`` positions on either side (section 5's wildcard growth)."""
        if before < 0 or after < 0:
            raise ValueError("wildcard counts must be non-negative")
        return TrajectoryPattern((WILDCARD,) * before + self.cells + (WILDCARD,) * after)

    # -- relations (Definition 3) -----------------------------------------------------

    def is_super_pattern_of(self, other: "TrajectoryPattern") -> bool:
        """Definition 3: ``other`` appears as a contiguous block in ``self``."""
        n, m = len(other.cells), len(self.cells)
        if n > m:
            return False
        return any(
            self.cells[i : i + n] == other.cells for i in range(m - n + 1)
        )

    def is_proper_super_pattern_of(self, other: "TrajectoryPattern") -> bool:
        """Super-pattern with strictly greater length (Definition 3)."""
        return len(self.cells) > len(other.cells) and self.is_super_pattern_of(other)

    def is_sub_pattern_of(self, other: "TrajectoryPattern") -> bool:
        """Inverse of :meth:`is_super_pattern_of`."""
        return other.is_super_pattern_of(self)

    def splits(self) -> Iterator[tuple["TrajectoryPattern", "TrajectoryPattern"]]:
        """All "cuts" into a non-empty left and right part (min-max property)."""
        for i in range(1, len(self.cells)):
            yield TrajectoryPattern(self.cells[:i]), TrajectoryPattern(self.cells[i:])

    def contiguous_sub_patterns(self, length: int) -> Iterator["TrajectoryPattern"]:
        """All contiguous sub-patterns of the given ``length``."""
        if not 1 <= length <= len(self.cells):
            raise ValueError(f"invalid sub-pattern length {length} for {self!r}")
        for i in range(len(self.cells) - length + 1):
            yield TrajectoryPattern(self.cells[i : i + length])

    # -- geometry helpers --------------------------------------------------------------

    def centers(self, grid: Grid) -> np.ndarray:
        """Positions as grid-cell centres, shape ``(m, 2)``.

        Wildcard positions have no geometry; patterns containing them are
        rejected (callers handle wildcards through the DP evaluation path).
        """
        if self.has_wildcards:
            raise ValueError("wildcard positions have no centre coordinates")
        return grid.cell_centers(np.asarray(self.cells, dtype=np.int64))

    def snapshot_distance(self, other: "TrajectoryPattern", grid: Grid) -> np.ndarray:
        """Per-snapshot centre distances to an equal-length pattern.

        This is the quantity Definition 1 compares against ``gamma``.
        """
        if len(self) != len(other):
            raise ValueError("snapshot distances need equal-length patterns")
        diff = self.centers(grid) - other.centers(grid)
        return np.hypot(diff[:, 0], diff[:, 1])

    def is_similar_to(
        self, other: "TrajectoryPattern", grid: Grid, gamma: float
    ) -> bool:
        """Definition 1: every snapshot distance is at most ``gamma``.

        The comparison carries a tiny relative tolerance so that patterns
        exactly ``gamma`` apart (a common case when ``gamma`` is a multiple
        of the cell size) land on the "similar" side regardless of
        floating-point rounding in the centre coordinates.
        """
        if len(self) != len(other):
            return False
        tolerance = 1e-9 * max(gamma, 1.0)
        return bool(np.all(self.snapshot_distance(other, grid) <= gamma + tolerance))


def patterns_from_cells(cell_lists: Sequence[Sequence[int]]) -> list[TrajectoryPattern]:
    """Bulk constructor used by tests and the experiment harness."""
    return [TrajectoryPattern(tuple(cells)) for cells in cell_lists]
