"""Out-of-core trajectory storage: the ``.tjc`` columnar format.

Public surface:

* :class:`TrajectoryStore` / :func:`open_store` -- O(footer) reader with
  zero-copy memmap or bounded ``pread`` access;
* :class:`StoreWriter` / :func:`write_store` -- streaming atomic writer;
* :class:`StoreDataset` -- lazy drop-in ``TrajectoryDataset`` over a
  store span (what engines consume);
* the converters in :mod:`repro.storage.ingest`.

See ``docs/STORAGE.md`` for the format specification.
"""

from repro.storage.columnar import (
    FORMAT_NAME,
    FORMAT_VERSION,
    STORE_SUFFIX,
    StoreFormatError,
    StoreWriter,
    TrajectoryStore,
    is_store_path,
    open_store,
    write_store,
)
from repro.storage.dataset import StoreDataset
from repro.storage.ingest import (
    convert_csv_to_store,
    convert_jsonl_to_store,
    ingest_porto_csv,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "STORE_SUFFIX",
    "StoreDataset",
    "StoreFormatError",
    "StoreWriter",
    "TrajectoryStore",
    "convert_csv_to_store",
    "convert_jsonl_to_store",
    "ingest_porto_csv",
    "is_store_path",
    "open_store",
    "write_store",
]
