"""Fig. 4(b): runtime vs the number of trajectories S.

Paper: TrajPattern scales linearly with S; PB super-linearly (more
trajectories raise singular NMs, inflating PB's extensible prefix set).
"""

import pytest

from repro.baselines.pb import PBMiner
from repro.core.trajpattern import TrajPatternMiner

from benchmarks.conftest import BENCH_FIG4


@pytest.mark.parametrize("s", [15, 30, 60])
def test_bench_fig4b_trajpattern(benchmark, s):
    benchmark.group = "fig4b-trajpattern"
    engine = BENCH_FIG4.make_engine(n_trajectories=s)
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(engine, k=BENCH_FIG4.k).mine(),
        rounds=2,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k


@pytest.mark.parametrize("s", [15, 30, 60])
def test_bench_fig4b_pb(benchmark, s):
    benchmark.group = "fig4b-pb"
    engine = BENCH_FIG4.make_engine(n_trajectories=s)
    result, _ = benchmark.pedantic(
        lambda: PBMiner(
            engine, k=BENCH_FIG4.k, max_length=BENCH_FIG4.pb_max_length
        ).mine(),
        rounds=1,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k
