"""Unit tests for the observability layer (repro.obs).

Covers the metrics registry's enabled/disabled contract, span tracing
(nesting, record schema, cross-process propagation primitives), the JSON
log formatter and the run-manifest determinism contract.
"""

import json
import logging

import pytest

from repro.obs import logs, manifest, metrics, report, tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SPAN_RECORD_KEYS, BufferSink, SpanContext


@pytest.fixture(autouse=True)
def _obs_default_off():
    """Every test starts and ends with tracing off and the registry clean."""
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()
    yield
    tracing.disable_tracing()
    registry.disable()
    registry.reset()


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1.0, 3.0, 2.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["histograms"]["h"]["last"] == 2.0

    def test_timer_observes_nanoseconds(self):
        reg = MetricsRegistry(enabled=True)
        with reg.timer("t_ns"):
            pass
        h = reg.histogram("t_ns", unit="ns")
        assert h.count == 1
        assert h.unit == "ns"
        assert h.total >= 0
        assert h.total_seconds == h.total / metrics.NS_PER_S

    def test_disabled_registry_creates_no_instruments(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        with reg.timer("t"):
            pass
        assert list(metrics.instruments(reg)) == []
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_registry_returns_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")
        assert reg.timer("a") is reg.timer("b")

    def test_global_registry_disabled_by_default(self):
        metrics.counter("x").inc()
        metrics.timer("y").__enter__()
        assert list(metrics.instruments(metrics.get_registry())) == []

    def test_merge_snapshot_folds_counters_and_histograms(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h", unit="ns").observe(10)
        b.histogram("h", unit="ns").observe(30)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 40.0
        assert h["min"] == 10.0 and h["max"] == 30.0

    def test_merge_into_disabled_registry_is_noop(self):
        a = MetricsRegistry(enabled=False)
        b = MetricsRegistry(enabled=True)
        b.counter("c").inc()
        a.merge(b)
        assert list(metrics.instruments(a)) == []


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        s1 = tracing.span("anything", attr=1)
        s2 = tracing.span("other")
        assert s1 is s2 is tracing.NOOP_SPAN
        with s1 as s:
            s.set_attr("k", "v")  # must not raise
        assert tracing.current_context() is None

    def test_spans_nest_and_emit_schema_records(self):
        sink = BufferSink()
        tracing.configure_tracing(sink=sink, trace_id="t")
        with tracing.span("outer", a=1):
            with tracing.span("inner"):
                pass
        tracing.disable_tracing()
        inner, outer = sink.records
        for record in (inner, outer):
            for key in SPAN_RECORD_KEYS:
                assert key in record
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["span"]
        assert outer["attrs"] == {"a": 1}
        assert inner["trace"] == outer["trace"] == "t"

    def test_ambient_parent_and_base_attrs(self):
        """The worker-side configuration: foreign parent + shard stamp."""
        sink = BufferSink()
        ctx = SpanContext(trace_id="parent-trace", span_id="dead.1")
        tracing.configure_tracing(
            sink=sink,
            trace_id=ctx.trace_id,
            ambient_parent=ctx.span_id,
            base_attrs={"shard": 3},
        )
        with tracing.span("index.build"):
            pass
        (record,) = sink.records
        assert record["trace"] == "parent-trace"
        assert record["parent"] == "dead.1"
        assert record["attrs"]["shard"] == 3

    def test_error_spans_record_exception_type(self):
        sink = BufferSink()
        tracing.configure_tracing(sink=sink)
        with pytest.raises(ValueError):
            with tracing.span("boom"):
                raise ValueError("x")
        assert sink.records[0]["attrs"]["error"] == "ValueError"

    def test_emit_foreign_writes_drained_records(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        tracing.configure_tracing(path=trace_file)
        with tracing.span("local"):
            pass
        tracing.emit_foreign(
            [
                {
                    "kind": "span",
                    "trace": "t",
                    "span": "w.1",
                    "name": "worker",
                    "ts_ns": 1,
                    "dur_ns": 2,
                    "pid": 9,
                }
            ]
        )
        tracing.disable_tracing()
        lines = trace_file.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "worker"

    def test_forget_tracer_leaves_sink_open(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        tracer = tracing.configure_tracing(path=trace_file)
        tracing.forget_tracer()
        assert tracing.get_tracer() is None
        # The sink must still be usable by the original owner.
        tracer.sink.emit({"kind": "span"})
        tracer.close()


class TestJsonLogs:
    def test_formatter_emits_json_with_extras(self):
        logger = logs.get_logger("unit")
        record = logger.makeRecord(
            logger.name, logging.INFO, __file__, 1, "hello", (), None,
            extra={"cache": "hit", "n": 3},
        )
        line = logs.JsonFormatter().format(record)
        payload = json.loads(line)
        assert payload["msg"] == "hello"
        assert payload["logger"] == "repro.unit"
        assert payload["level"] == "INFO"
        assert payload["cache"] == "hit" and payload["n"] == 3

    def test_configure_logging_is_idempotent(self):
        logs.configure_logging("INFO")
        logs.configure_logging("DEBUG")
        root = logging.getLogger("repro")
        own = [h for h in root.handlers if getattr(h, "_repro_obs", False)]
        assert len(own) == 1
        assert root.level == logging.DEBUG

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            logs.configure_logging("LOUD")


class TestManifest:
    def _build(self):
        return manifest.build_manifest(
            command="mine",
            arguments={"k": 5, "dataset": "d.jsonl"},
            dataset_fingerprint="abc123",
            config={"delta": 0.5},
            metrics={"counters": {"c": 1}},
            wall_time_s=1.5,
            cpu_time_s=2.5,
        )

    def test_round_trip(self, tmp_path):
        doc = self._build()
        path = manifest.write_manifest(tmp_path / "m.json", doc)
        loaded = manifest.load_manifest(path)
        assert loaded == json.loads(json.dumps(doc))

    def test_deterministic_view_is_stable_across_runs(self):
        a = manifest.deterministic_view(self._build())
        b = manifest.deterministic_view(self._build())
        assert a == b
        assert "runtime" not in a and "metrics" not in a

    def test_volatile_sections_present(self):
        doc = self._build()
        assert doc["runtime"]["wall_time_s"] == 1.5
        assert doc["runtime"]["cpu_time_s"] == 2.5
        assert doc["runtime"]["peak_rss_bytes"] > 0
        assert doc["metrics"] == {"counters": {"c": 1}}

    def test_load_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            manifest.load_manifest(bad)


class TestReportRendering:
    def test_load_trace_validates_schema(self, tmp_path):
        good = {
            "kind": "span", "trace": "t", "span": "1.1", "name": "run",
            "ts_ns": 0, "dur_ns": 5, "pid": 1,
        }
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps(good) + "\n")
        assert report.load_trace(trace) == [good]

        bad = dict(good)
        del bad["dur_ns"]
        trace.write_text(json.dumps(bad) + "\n")
        with pytest.raises(ValueError, match="missing"):
            report.load_trace(trace)

        # An empty file is a valid (span-less) trace, not an error.
        trace.write_text("")
        assert report.load_trace(trace) == []

    def test_trace_report_renders_phase_and_shard_tables(self, tmp_path):
        spans = [
            {"kind": "span", "trace": "t", "span": "1.1", "name": "run",
             "ts_ns": 0, "dur_ns": 100, "pid": 1},
            {"kind": "span", "trace": "t", "span": "2.1", "parent": "1.1",
             "name": "index.build", "ts_ns": 5, "dur_ns": 20, "pid": 2,
             "attrs": {"shard": 0}},
        ]
        trace = tmp_path / "t.jsonl"
        trace.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        rendered = report.render_file(trace)
        assert "phase" in rendered and "wall%" in rendered
        assert "index.build" in rendered
        assert "per-shard spans:" in rendered

    def test_render_file_dispatches_manifest(self, tmp_path):
        doc = manifest.build_manifest(
            command="mine", arguments={}, dataset_fingerprint="f" * 64
        )
        path = manifest.write_manifest(tmp_path / "m.json", doc)
        rendered = report.render_file(path)
        assert "run manifest: mine" in rendered

    def test_span_children_groups_by_parent(self):
        spans = [
            {"kind": "span", "trace": "t", "span": "a", "name": "root",
             "ts_ns": 0, "dur_ns": 1, "pid": 1},
            {"kind": "span", "trace": "t", "span": "b", "parent": "a",
             "name": "child", "ts_ns": 0, "dur_ns": 1, "pid": 1},
        ]
        children = report.span_children(spans)
        assert [s["span"] for s in children[None]] == ["a"]
        assert [s["span"] for s in children["a"]] == ["b"]
