"""Randomised exactness checks: miners vs brute-force oracles.

Theorem 1 claims TrajPattern returns exactly the k patterns with the
highest NM.  The fixture-based oracle tests pin one instance; these
hypothesis tests draw many tiny instances (small alphabets, short
trajectories) and compare the miner -- under every pruning configuration
-- and the PB baseline against exhaustive enumeration.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.match_miner import MatchMiner
from repro.baselines.pb import PBMiner
from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

# A 2x2 grid keeps exhaustive enumeration over length <= 4 at 340 patterns.
GRID = Grid(BoundingBox.unit(), nx=2, ny=2)
MAX_LENGTH = 4

seeds = st.integers(min_value=0, max_value=100_000)
ks = st.integers(min_value=1, max_value=6)


def tiny_engine(seed: int) -> NMEngine:
    rng = np.random.default_rng(seed)
    trajectories = []
    for _ in range(int(rng.integers(2, 5))):
        n = int(rng.integers(3, 8))
        means = rng.uniform(0.0, 1.0, (n, 2))
        trajectories.append(
            UncertainTrajectory(means, float(rng.uniform(0.1, 0.4)))
        )
    return NMEngine(
        TrajectoryDataset(trajectories),
        GRID,
        EngineConfig(delta=0.25, min_prob=1e-4),
    )


def brute_force(engine, k, key):
    scored = []
    for length in range(1, MAX_LENGTH + 1):
        for combo in itertools.product(range(GRID.n_cells), repeat=length):
            scored.append((combo, key(TrajectoryPattern(combo))))
    scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
    return [c for c, _ in scored[:k]]


class TestTrajPatternExactness:
    @settings(max_examples=25, deadline=None)
    @given(seeds, ks)
    def test_default_configuration(self, seed, k):
        engine = tiny_engine(seed)
        mined = TrajPatternMiner(engine, k=k, max_length=MAX_LENGTH).mine()
        expected = brute_force(engine, k, engine.nm)
        assert [p.cells for p in mined.patterns] == expected

    @settings(max_examples=12, deadline=None)
    @given(seeds, ks)
    def test_exhaustive_configuration(self, seed, k):
        """The literal paper loop (no lazy bounds) agrees too."""
        engine = tiny_engine(seed)
        mined = TrajPatternMiner(
            engine,
            k=k,
            max_length=MAX_LENGTH,
            use_bound_pruning=False,
            use_extension_pruning=False,
        ).mine()
        expected = brute_force(engine, k, engine.nm)
        assert [p.cells for p in mined.patterns] == expected

    @settings(max_examples=12, deadline=None)
    @given(seeds)
    def test_min_length_variant(self, seed):
        engine = tiny_engine(seed)
        mined = TrajPatternMiner(
            engine, k=4, min_length=2, max_length=MAX_LENGTH
        ).mine()
        scored = []
        for length in range(2, MAX_LENGTH + 1):
            for combo in itertools.product(range(GRID.n_cells), repeat=length):
                scored.append((combo, engine.nm(TrajectoryPattern(combo))))
        scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
        assert [p.cells for p in mined.patterns] == [c for c, _ in scored[:4]]


class TestConvergenceRegression:
    """Pinned hypothesis counterexample (seed 4735, k=3).

    On this instance the true third-best pattern is ``(1, 1, 3)`` =
    high ``(1,)`` + low ``(1, 3)``, where ``(1, 3)`` only enters ``Q`` in
    the first extension round.  A miner that stops as soon as the high set
    stabilises never tries that concatenation and reports ``(2,)`` instead;
    convergence must also require the relevant extension-partner set (high
    patterns + 1-extension lows) to be stable.
    """

    @pytest.mark.parametrize("extension", [True, False])
    @pytest.mark.parametrize("bound", [True, False])
    def test_high_plus_fresh_low_pattern_found(self, extension, bound):
        engine = tiny_engine(4735)
        mined = TrajPatternMiner(
            engine,
            k=3,
            max_length=MAX_LENGTH,
            use_extension_pruning=extension,
            use_bound_pruning=bound,
        ).mine()
        assert [p.cells for p in mined.patterns] == [(1,), (3,), (1, 1, 3)]
        assert [p.cells for p in mined.patterns] == brute_force(engine, 3, engine.nm)


class TestBaselineExactness:
    @settings(max_examples=15, deadline=None)
    @given(seeds, ks)
    def test_pb_matches_oracle(self, seed, k):
        engine = tiny_engine(seed)
        result, _ = PBMiner(engine, k=k, max_length=MAX_LENGTH).mine()
        expected = brute_force(engine, k, engine.nm)
        assert [p.cells for p in result.patterns] == expected

    @settings(max_examples=15, deadline=None)
    @given(seeds, ks)
    def test_match_miner_matches_oracle(self, seed, k):
        engine = tiny_engine(seed)
        result = MatchMiner(engine, k=k, max_length=MAX_LENGTH).mine()
        expected = brute_force(engine, k, engine.match)
        assert [p.cells for p in result.patterns] == expected
