"""Public API surface tests: imports, exports and versioning.

A downstream user depends on these names; the tests pin them so an
accidental rename shows up immediately.
"""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "name",
        [
            "UncertainTrajectory",
            "TrajectoryDataset",
            "Grid",
            "BoundingBox",
            "Point",
            "ProbModel",
            "EngineConfig",
            "NMEngine",
            "build_engine",
            "TrajectoryPattern",
            "WILDCARD",
            "Gap",
            "GapPattern",
            "TrajPatternMiner",
            "MiningResult",
            "PatternGroup",
            "discover_pattern_groups",
            "to_velocity_trajectory",
            "to_velocity_dataset",
        ],
    )
    def test_expected_exports(self, name):
        assert name in repro.__all__


class TestSubpackages:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.uncertainty",
            "repro.trajectory",
            "repro.core",
            "repro.core.wildcards",
            "repro.baselines",
            "repro.mobility",
            "repro.mobility.models",
            "repro.datagen",
            "repro.apps",
            "repro.experiments",
            "repro.viz",
            "repro.cli",
            "repro.obs",
            "repro.obs.metrics",
            "repro.obs.tracing",
            "repro.obs.logs",
            "repro.obs.manifest",
            "repro.obs.report",
        ],
    )
    def test_importable(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} is missing a module docstring"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.uncertainty",
            "repro.trajectory",
            "repro.core",
            "repro.baselines",
            "repro.mobility",
            "repro.datagen",
            "repro.apps",
        ],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    def test_public_classes_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if name not in ("WILDCARD", "__version__")
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"
