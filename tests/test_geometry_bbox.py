"""Unit tests for repro.geometry.bbox."""

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


class TestConstruction:
    def test_basic_properties(self):
        box = BoundingBox(0.0, 1.0, 2.0, 4.0)
        assert box.width == pytest.approx(2.0)
        assert box.height == pytest.approx(3.0)
        assert box.center == Point(1.0, 2.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_zero_area_allowed(self):
        box = BoundingBox(1.0, 1.0, 1.0, 1.0)
        assert box.width == 0.0
        assert box.contains(1.0, 1.0)

    def test_unit(self):
        box = BoundingBox.unit()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 1, 1)


class TestQueries:
    def test_contains_interior_and_border(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.5, 0.5)
        assert box.contains(0.0, 1.0)
        assert not box.contains(1.0001, 0.5)

    def test_expand(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expand(0.5)
        assert (box.min_x, box.max_y) == (-0.5, 1.5)

    def test_expand_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.unit().expand(-0.1)

    def test_union(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(0.5, -1.0, 2.0, 0.5)
        u = a.union(b)
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0.0, -1.0, 2.0, 1.0)


class TestOfPoints:
    def test_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = BoundingBox.of_points(pts)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, -1.0, 2.0, 1.0)

    def test_of_points_empty_rejected(self):
        with pytest.raises(ValueError, match="zero points"):
            BoundingBox.of_points(np.empty((0, 2)))

    def test_of_points_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            BoundingBox.of_points(np.zeros((3, 3)))

    def test_of_points_contains_all(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(50, 2))
        box = BoundingBox.of_points(pts)
        assert all(box.contains(x, y) for x, y in pts)
