"""Gap patterns: variable-length "don't care" runs (paper section 5).

Section 5 extends trajectory patterns with wild-card positions: a ``*``
matches any location, at most ``d`` consecutive ``*``'s are allowed, and "a
gap can be viewed as a variant number of consecutive '*'s".  Fixed
wild-cards are handled natively by the measures and the engine
(:data:`~repro.core.pattern.WILDCARD` positions contribute probability 1
and do not count toward the normalising length).  This module adds the
*variable* gaps, evaluated -- as the paper suggests -- with dynamic
programming.

A :class:`GapPattern` is a sequence of solid segments separated by gaps
with inclusive length bounds::

    GapPattern.parse("3 5 [0-2] 9 9", ...)   # two segments, gap of 0..2

The NM of a gap pattern against a trajectory is the maximum over all
admissible alignments (gap lengths) of the geometric-mean log probability
of the *specified* positions -- consistent with the fixed-wild-card
convention.  The DP runs over (segment boundary, snapshot) states in
``O(n_segments * L * max_gap)`` per trajectory.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
import numpy as np

from repro.core.engine import NMEngine
from repro.core.pattern import TrajectoryPattern

_GAP_TOKEN = re.compile(r"^\[(\d+)-(\d+)\]$")


@dataclass(frozen=True)
class Gap:
    """A variable run of don't-care snapshots between two solid segments."""

    min_length: int
    max_length: int

    def __post_init__(self) -> None:
        if self.min_length < 0:
            raise ValueError("gap lengths must be non-negative")
        if self.max_length < self.min_length:
            raise ValueError("gap max_length must be >= min_length")


@dataclass(frozen=True)
class GapPattern:
    """Solid segments separated by bounded variable gaps.

    ``segments`` has one more element than ``gaps``; segment ``i`` is
    followed by gap ``i``.
    """

    segments: tuple[TrajectoryPattern, ...]
    gaps: tuple[Gap, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a gap pattern needs at least one segment")
        if len(self.gaps) != len(self.segments) - 1:
            raise ValueError(
                f"{len(self.segments)} segments need {len(self.segments) - 1} "
                f"gaps, got {len(self.gaps)}"
            )
        if any(s.has_wildcards for s in self.segments):
            raise ValueError(
                "segments must be solid; express don't-cares as gaps"
            )

    @property
    def n_specified(self) -> int:
        """Number of solid positions (the NM normaliser)."""
        return sum(len(s) for s in self.segments)

    def min_span(self) -> int:
        """Shortest window the pattern can occupy."""
        return self.n_specified + sum(g.min_length for g in self.gaps)

    def max_span(self) -> int:
        """Longest window the pattern can occupy."""
        return self.n_specified + sum(g.max_length for g in self.gaps)

    @classmethod
    def parse(cls, text: str) -> "GapPattern":
        """Parse ``"3 5 [0-2] 9 9"``-style pattern strings.

        Tokens are cell ids; ``[a-b]`` introduces a gap of ``a`` to ``b``
        snapshots.  Adjacent gap tokens are rejected (merge them instead).
        """
        segments: list[list[int]] = [[]]
        gaps: list[Gap] = []
        for token in text.split():
            gap_match = _GAP_TOKEN.match(token)
            if gap_match:
                if not segments[-1]:
                    raise ValueError(
                        f"gap {token!r} must follow a solid position"
                    )
                gaps.append(Gap(int(gap_match.group(1)), int(gap_match.group(2))))
                segments.append([])
            else:
                segments[-1].append(int(token))
        if not segments[-1]:
            raise ValueError("a gap pattern cannot end with a gap")
        return cls(
            tuple(TrajectoryPattern(tuple(s)) for s in segments), tuple(gaps)
        )


def nm_gap_pattern(engine: NMEngine, pattern: GapPattern) -> float:
    """Dataset NM of a gap pattern: sum over trajectories of the best
    admissible alignment (section 5's DP evaluation).

    All segments' window scores over the *whole* dataset are computed with
    one batched engine call (shared column slices,
    :meth:`~repro.core.engine.NMEngine.window_scores_batch`); the DP then
    runs per trajectory on slices of those global arrays.

    Sharded engines (:class:`~repro.core.parallel.ParallelNMEngine`)
    expose ``nm_gap_pattern_total`` instead of raw window scores; the DP
    then runs inside each shard worker and the per-shard sums add exactly.
    """
    sharded_total = getattr(engine, "nm_gap_pattern_total", None)
    if sharded_total is not None:
        return float(sharded_total(pattern))
    global_scores = engine.window_scores_batch(list(pattern.segments))
    total = 0.0
    for i in range(len(engine.dataset)):
        seg_scores = _slice_segment_scores(engine, pattern, global_scores, i)
        total += _best_alignment_nm(engine, pattern, seg_scores, i)
    return float(total)


def nm_gap_pattern_trajectory(
    engine: NMEngine, pattern: GapPattern, traj_index: int
) -> float:
    """Best-alignment NM of a gap pattern within one trajectory.

    Prefer :func:`nm_gap_pattern` for the dataset total -- it batches the
    segment scoring across all trajectories at once.
    """
    seg_scores = [
        _segment_window_scores(engine, seg, traj_index) for seg in pattern.segments
    ]
    return _best_alignment_nm(engine, pattern, seg_scores, traj_index)


def _best_alignment_nm(
    engine: NMEngine,
    pattern: GapPattern,
    seg_scores: list[np.ndarray],
    traj_index: int,
) -> float:
    """DP over segment placements given per-trajectory segment scores.

    ``best[j][t]`` is the maximum summed log-probability of placing
    segments ``0..j`` such that segment ``j`` ends at snapshot ``t``
    (inclusive).  Transitions advance by the next segment's length plus an
    admissible gap.  Trajectories shorter than the minimum span score the
    engine's floor (consistent with fixed patterns).

    The DP itself runs on the engine's kernel backend
    (:meth:`~repro.core.kernels.KernelBackend.gap_dp`); the floor guard
    and ``n_specified`` normalisation stay here.
    """
    length = len(engine.dataset[traj_index])
    floor = engine.floor_log_prob
    if length < pattern.min_span():
        return floor

    backend, arena = _gap_backend(engine)
    seg_lens = np.array([len(s) for s in pattern.segments], dtype=np.int64)
    gap_mins = np.array([g.min_length for g in pattern.gaps], dtype=np.int64)
    gap_maxs = np.array([g.max_length for g in pattern.gaps], dtype=np.int64)
    top = backend.gap_dp(seg_scores, seg_lens, gap_mins, gap_maxs, length, arena)
    if top == -np.inf:
        return floor
    return top / pattern.n_specified


#: Lazily-built (backend, arena) pair for engine-like objects that predate
#: the kernel backends (duck-typed test doubles); real engines carry their
#: own via ``_kernels`` / ``_arena``.
_fallback_state: tuple | None = None


def _gap_backend(engine) -> tuple:
    """The kernel backend and scratch arena to run the gap DP on."""
    backend = getattr(engine, "_kernels", None)
    if backend is not None:
        return backend, engine._arena
    global _fallback_state
    if _fallback_state is None:
        from repro.core import kernels

        _fallback_state = (
            kernels.resolve_backend("numpy", "float64"),
            kernels.ScratchArena(),
        )
    return _fallback_state


def _slice_segment_scores(
    engine: NMEngine,
    pattern: GapPattern,
    global_scores: list[np.ndarray],
    traj_index: int,
) -> list[np.ndarray]:
    """One trajectory's segment windows, sliced out of the global arrays.

    Window starts fully inside the trajectory never cross a boundary, so
    the raw global sums equal the per-trajectory ones.
    """
    length = len(engine.dataset[traj_index])
    start_row = int(engine._starts[traj_index])
    out = []
    for seg, scores in zip(pattern.segments, global_scores):
        n_windows = max(length - len(seg) + 1, 0)
        out.append(scores[start_row : start_row + n_windows])
    return out


def _segment_window_scores(
    engine: NMEngine, segment: TrajectoryPattern, traj_index: int
) -> np.ndarray:
    """Summed log-prob of ``segment`` at every window start of a trajectory.

    Index ``s`` holds the score of the window ``[s, s + len - 1]``; windows
    past the end are excluded by construction (array length L - n + 1).
    """
    length = len(engine.dataset[traj_index])
    n = len(segment)
    start_row = int(engine._starts[traj_index])
    scores = np.zeros(length - n + 1)
    for j, cell in enumerate(segment.cells):
        col = engine._column(cell)
        scores += col[start_row + j : start_row + j + len(scores)]
    return scores
