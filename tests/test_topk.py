"""Unit tests for the PatternBook (Q / omega / high-low bookkeeping)."""

import math

import pytest

from repro.core.topk import PatternBook, sort_key


class TestSortKey:
    def test_orders_by_nm_then_length_then_cells(self):
        items = [((2,), -5.0), ((1,), -3.0), ((1, 2), -3.0), ((0,), -3.0)]
        ordered = sorted(items, key=lambda it: sort_key(*it))
        assert ordered == [((0,), -3.0), ((1,), -3.0), ((1, 2), -3.0), ((2,), -5.0)]


class TestInsertion:
    def test_exact_and_bounded_membership(self):
        book = PatternBook(k=2)
        book.insert_exact((1,), -1.0)
        book.insert_bounded((2, 3), -9.0)
        assert (1,) in book
        assert (2, 3) in book
        assert len(book) == 2
        assert book.n_exact == 1
        assert book.n_bounded == 1

    def test_value_prefers_exact(self):
        book = PatternBook(k=2)
        book.insert_exact((1,), -1.0)
        assert book.value((1,)) == -1.0
        book.insert_bounded((2,), -4.0)
        assert book.value((2,)) == -4.0

    def test_exact_supersedes_bounded(self):
        book = PatternBook(k=2)
        book.insert_bounded((1, 2), -9.0)
        book.insert_exact((1, 2), -10.0)
        assert book.n_bounded == 0
        assert book.value((1, 2)) == -10.0

    def test_bounded_never_downgrades_exact(self):
        book = PatternBook(k=2)
        book.insert_exact((1,), -1.0)
        book.insert_bounded((1,), -9.0)
        assert book.value((1,)) == -1.0

    def test_remove_keeps_exact_cache(self):
        book = PatternBook(k=1)
        book.insert_exact((1, 2), -3.0)
        book.remove((1, 2))
        assert (1, 2) not in book
        assert book.is_evaluated((1, 2))
        book.reactivate((1, 2))
        assert book.value((1, 2)) == -3.0

    def test_remove_bounded(self):
        book = PatternBook(k=1)
        book.insert_bounded((1, 2), -3.0)
        book.remove((1, 2))
        assert (1, 2) not in book
        assert not book.is_evaluated((1, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternBook(k=0)
        with pytest.raises(ValueError):
            PatternBook(k=1, min_length=0)


class TestOmega:
    def test_omega_is_kth_best(self):
        book = PatternBook(k=2)
        for i, nm in enumerate([-1.0, -3.0, -2.0]):
            book.insert_exact((i,), nm)
        assert book.update_omega() == -2.0

    def test_omega_inf_until_k_patterns(self):
        book = PatternBook(k=3)
        book.insert_exact((0,), -1.0)
        assert math.isinf(book.update_omega())

    def test_omega_never_decreases(self):
        book = PatternBook(k=1)
        book.insert_exact((0,), -1.0)
        assert book.update_omega() == -1.0
        book.insert_exact((1,), -5.0)
        assert book.update_omega() == -1.0

    def test_omega_ignores_bounded(self):
        book = PatternBook(k=1)
        book.insert_bounded((0, 1), -0.5)
        assert math.isinf(book.update_omega())

    def test_min_length_variant(self):
        book = PatternBook(k=1, min_length=2)
        book.insert_exact((0,), -0.1)  # short: does not qualify
        assert math.isinf(book.update_omega())
        book.insert_exact((0, 1), -2.0)
        assert book.update_omega() == -2.0


class TestHighLow:
    def make_book(self):
        book = PatternBook(k=2)
        book.insert_exact((0,), -1.0)
        book.insert_exact((1,), -2.0)
        book.insert_exact((2,), -3.0)
        book.insert_bounded((0, 1), -9.0)
        book.update_omega()
        return book

    def test_split(self):
        book = self.make_book()
        assert set(book.high_patterns()) == {(0,), (1,)}
        assert set(book.low_patterns()) == {(2,), (0, 1)}

    def test_everything_high_while_omega_inf(self):
        book = PatternBook(k=5)
        book.insert_exact((0,), -1.0)
        book.insert_bounded((0, 1), -9.0)
        assert set(book.high_patterns()) == {(0,)}
        assert set(book.low_patterns()) == {(0, 1)}

    def test_partners_by_length_sorted(self):
        book = self.make_book()
        partners = book.partners_by_length()
        values, cells = partners[1]
        assert values == sorted(values, reverse=True)
        assert cells[0] == (0,)
        assert partners[2][1] == [(0, 1)]


class TestTopK:
    def test_top_k_deterministic(self):
        book = PatternBook(k=2)
        book.insert_exact((5,), -1.0)
        book.insert_exact((1,), -1.0)
        book.insert_exact((9,), -2.0)
        top = book.top_k()
        assert [c for c, _ in top] == [(1,), (5,)]

    def test_top_k_respects_min_length(self):
        book = PatternBook(k=2, min_length=2)
        book.insert_exact((0,), -0.1)
        book.insert_exact((1, 2), -5.0)
        top = book.top_k()
        assert [c for c, _ in top] == [(1, 2)]

    def test_iter_sorted_exact_before_bounded(self):
        book = PatternBook(k=1)
        book.insert_exact((3,), -4.0)
        book.insert_bounded((1, 1), -0.5)
        assert [c for c, _ in book.iter_sorted()] == [(3,), (1, 1)]
