"""Persistence for trajectory datasets.

Two formats are supported:

* **JSONL** -- one JSON object per trajectory; lossless (keeps metadata,
  per-snapshot sigmas, timing).  The canonical on-disk form.
* **CSV** -- one row per snapshot with columns
  ``object_id,snapshot,x,y,sigma``; convenient for interchange with
  spreadsheet/GIS tooling, loses dataset metadata and timing granularity
  beyond the implied snapshot index.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

_FORMAT_VERSION = 1


def save_dataset_jsonl(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in JSON-lines format.

    The first line is a header record carrying the format version and the
    dataset metadata; each subsequent line is one trajectory.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "format": "repro.trajectory",
            "version": _FORMAT_VERSION,
            "metadata": dataset.metadata,
        }
        fh.write(json.dumps(header) + "\n")
        for traj in dataset:
            record = {
                "object_id": traj.object_id,
                "start_time": traj.start_time,
                "dt": traj.dt,
                "means": traj.means.tolist(),
                "sigmas": traj.sigmas.tolist(),
            }
            fh.write(json.dumps(record) + "\n")


def read_jsonl_header(path: str | Path) -> dict:
    """Parse and validate only the header line; returns its metadata dict.

    Cheap eager validation (the streaming engines use it to fail fast on a
    bad file before any mining starts).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        return _parse_header(path, fh.readline())


def _parse_header(path: Path, first: str) -> dict:
    if not first or not first.strip():
        raise ValueError(f"{path}: empty file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}:1: header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ValueError(f"{path}:1: header must be a JSON object")
    if header.get("format") != "repro.trajectory":
        raise ValueError(f"{path}: not a repro trajectory file")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {header.get('version')!r}"
        )
    metadata = header.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ValueError(f"{path}:1: metadata must be a JSON object")
    return metadata


def _parse_trajectory(path: Path, line_no: int, line: str) -> UncertainTrajectory:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}:{line_no}: not JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise ValueError(f"{path}:{line_no}: trajectory record must be a JSON object")
    try:
        return UncertainTrajectory(
            np.asarray(record["means"], dtype=float),
            np.asarray(record["sigmas"], dtype=float),
            object_id=record.get("object_id", ""),
            start_time=record.get("start_time", 0.0),
            dt=record.get("dt", 1.0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}:{line_no}: bad trajectory record: {exc}") from exc


def iter_dataset_jsonl(path: str | Path):
    """Stream trajectories from a JSONL dataset file one at a time.

    Yields the header metadata dict first, then one
    :class:`UncertainTrajectory` per record line.  Peak memory is a single
    trajectory -- this is the primitive large-file ingest and the
    streaming engine build on, so converting a file bigger than RAM never
    materialises the dataset.  Malformed input raises ``ValueError`` with
    the usual ``path:line`` prefix.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        yield _parse_header(path, fh.readline())
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            yield _parse_trajectory(path, line_no, line)


def load_dataset_jsonl(path: str | Path) -> TrajectoryDataset:
    """Read a dataset previously written by :func:`save_dataset_jsonl`."""
    stream = iter_dataset_jsonl(path)
    metadata = next(stream)
    return TrajectoryDataset(list(stream), metadata=metadata)


def save_dataset_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write ``dataset`` as flat CSV (one row per snapshot)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["object_id", "snapshot", "x", "y", "sigma"])
        for i, traj in enumerate(dataset):
            object_id = traj.object_id or f"object-{i}"
            for snap, ((x, y), sigma) in enumerate(zip(traj.means, traj.sigmas)):
                writer.writerow([object_id, snap, repr(float(x)), repr(float(y)), repr(float(sigma))])


def load_dataset_csv(path: str | Path) -> TrajectoryDataset:
    """Read a dataset written by :func:`save_dataset_csv`.

    Rows are grouped by ``object_id`` (order of first appearance) and sorted
    by snapshot index within each object.
    """
    path = Path(path)
    rows_by_object: dict[str, list[tuple[int, float, float, float]]] = {}
    order: list[str] = []
    with path.open("r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"object_id", "snapshot", "x", "y", "sigma"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"{path}: expected columns {sorted(required)}")
        for line_no, row in enumerate(reader, start=2):
            try:
                object_id = row["object_id"]
                entry = (
                    int(row["snapshot"]),
                    float(row["x"]),
                    float(row["y"]),
                    float(row["sigma"]),
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad snapshot row: {exc}") from exc
            if object_id not in rows_by_object:
                rows_by_object[object_id] = []
                order.append(object_id)
            rows_by_object[object_id].append(entry)

    trajectories = []
    for object_id in order:
        rows = sorted(rows_by_object[object_id])
        means = np.array([[x, y] for _, x, y, _ in rows])
        sigmas = np.array([s for _, _, _, s in rows])
        trajectories.append(UncertainTrajectory(means, sigmas, object_id=object_id))
    return TrajectoryDataset(trajectories)
