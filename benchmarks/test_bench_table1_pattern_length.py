"""T1: average length of top-k patterns -- match vs NM (section 6.1 text).

Paper: on the bus data with min length 3, top-1000 match patterns average
~3.18 positions while top-1000 NM patterns average ~4.2.  The reproduced
claim is the *gap*: NM mines longer patterns than match at equal k.
"""

import pytest

from repro.baselines.match_miner import MatchMiner
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.bus import BusFleetConfig
from repro.experiments.datasets import bus_fleet_paths, bus_velocity_dataset, make_engine

FLEET = BusFleetConfig(n_routes=3, buses_per_route=4, n_days=3, n_ticks=60)


@pytest.fixture(scope="module")
def bus_engine():
    paths = bus_fleet_paths(seed=42, config=FLEET)
    dataset = bus_velocity_dataset(paths, seed=42)
    return make_engine(
        dataset, cell_size=0.006, min_prob=1e-4, max_cells_per_snapshot=64
    )


def test_bench_table1_nm_mining(benchmark, bus_engine):
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(
            bus_engine, k=30, min_length=3, max_length=6
        ).mine(),
        rounds=3,
        iterations=1,
    )
    assert result.mean_length() >= 3.0


def test_bench_table1_match_mining(benchmark, bus_engine):
    result = benchmark.pedantic(
        lambda: MatchMiner(bus_engine, k=30, min_length=3, max_length=6).mine(),
        rounds=1,
        iterations=1,
    )
    assert result.mean_length() >= 3.0


def test_bench_table1_shape(benchmark, bus_engine):
    """The paper's claim: NM patterns are longer on average than match
    patterns mined with the same k and minimum length."""

    def both():
        nm = TrajPatternMiner(bus_engine, k=30, min_length=3, max_length=6).mine()
        match = MatchMiner(bus_engine, k=30, min_length=3, max_length=6).mine()
        return nm.mean_length(), match.mean_length()

    nm_len, match_len = benchmark.pedantic(both, rounds=1, iterations=1)
    assert nm_len > match_len, (
        f"paper reports NM (4.2) > match (3.18); got NM {nm_len:.2f} "
        f"vs match {match_len:.2f}"
    )
