"""Canonical dataset builders shared by the experiments and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.core.engine import EngineConfig, NMEngine
from repro.datagen.bus import BusFleetConfig, BusFleetGenerator
from repro.datagen.observe import observe_paths
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator
from repro.geometry.grid import Grid
from repro.mobility.models import LinearModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import track_fleet
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.velocity import to_velocity_dataset
from repro.uncertainty.gaussian import ProbModel

#: Default reporting protocol for the bus experiments: U sized to the
#: per-tick travel distance so manoeuvres (not cruise) trigger reports,
#: c = 2 per the paper's lossy-uplink discussion.
DEFAULT_BUS_REPORTING = ReportingConfig(uncertainty=0.01, confidence_c=2.0, p_loss=0.0)


def bus_fleet_paths(
    seed: int = 42, config: BusFleetConfig = BusFleetConfig()
) -> list[GroundTruthPath]:
    """The synthetic bus fleet (500 traces at paper-scale defaults)."""
    return BusFleetGenerator(config).generate_paths(np.random.default_rng(seed))


def bus_velocity_dataset(
    paths: list[GroundTruthPath],
    reporting: ReportingConfig = DEFAULT_BUS_REPORTING,
    seed: int = 0,
    interpolated: bool = True,
) -> TrajectoryDataset:
    """Track a fleet with the linear model and difference to velocities.

    This is the paper's preprocessing (section 6.1): raw traces are reduced
    to the readings a predictive model cannot anticipate (the report
    stream), aligned on snapshots -- by default through offline report
    interpolation, the historical-data view -- and transformed to velocity
    trajectories.
    """
    tracked = track_fleet(
        paths, LinearModel, reporting, rng=np.random.default_rng(seed)
    )
    return to_velocity_dataset(tracked.to_dataset(interpolated=interpolated))


def zebranet_dataset(
    n_trajectories: int = 50,
    n_ticks: int = 100,
    sigma: float = 0.01,
    seed: int = 7,
    zebras_per_group: int = 5,
) -> TrajectoryDataset:
    """ZebraNet-style dataset with ``S`` trajectories of length ``L``.

    ``n_trajectories`` is rounded up to a multiple of ``zebras_per_group``
    and then truncated, keeping the group structure intact.
    """
    n_groups = max(1, (n_trajectories + zebras_per_group - 1) // zebras_per_group)
    config = ZebraNetConfig(
        n_groups=n_groups, zebras_per_group=zebras_per_group, n_ticks=n_ticks
    )
    rng = np.random.default_rng(seed)
    paths = ZebraNetGenerator(config).generate_paths(rng)[:n_trajectories]
    return observe_paths(paths, sigma=sigma, rng=rng)


def make_engine(
    dataset: TrajectoryDataset,
    cell_size: float,
    delta: float | None = None,
    min_prob: float = 1e-5,
    prob_model: ProbModel = ProbModel.BOX,
    max_cells_per_snapshot: int = 4096,
) -> NMEngine:
    """Grid + engine with the experiment-wide defaults."""
    grid = dataset.make_grid(cell_size)
    config = EngineConfig(
        delta=delta if delta is not None else cell_size,
        min_prob=min_prob,
        prob_model=prob_model,
        max_cells_per_snapshot=max_cells_per_snapshot,
    )
    return NMEngine(dataset, grid, config)


def grid_with_cells(dataset: TrajectoryDataset, target_cells: int) -> Grid:
    """Grid over the dataset with approximately ``target_cells`` cells.

    Used by the Fig. 4(d) sweep, which varies the paper's ``G`` parameter
    directly.
    """
    if target_cells < 1:
        raise ValueError("target_cells must be positive")
    box = dataset.bounding_box(n_sigmas=4.0)
    cell = float(np.sqrt(box.width * box.height / target_cells))
    return Grid.cover(box, cell)
