"""A4: dead-reckoning sensitivity to uplink loss (section 3.1 discussion).

Not a paper figure -- section 3.1 only argues that the confidence constant
``c`` should absorb the loss rate.  The benchmark quantifies the protocol:
attempts and tracking error grow with the loss rate, gracefully rather
than catastrophically.
"""

import pytest

from repro.datagen.bus import BusFleetConfig
from repro.experiments.loss_sensitivity import (
    LossSensitivityConfig,
    run_loss_sensitivity,
)

CONFIG = LossSensitivityConfig(
    loss_rates=(0.0, 0.05, 0.2, 0.5),
    fleet=BusFleetConfig(n_routes=2, buses_per_route=3, n_days=2, n_ticks=60),
)


def test_bench_loss_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: run_loss_sensitivity(CONFIG), rounds=1, iterations=1
    )
    rows = result.rows
    # Attempts and error are non-decreasing in the loss rate.
    attempts = [r.attempts for r in rows]
    errors = [r.mean_tracking_error for r in rows]
    assert attempts == sorted(attempts)
    assert errors == sorted(errors)
    # Even at 50% loss the protocol keeps tracking: the error stays within
    # a small multiple of the lossless baseline.
    assert errors[-1] < 5 * errors[0]
