"""Unit tests for repro.core.pattern."""

import numpy as np
import pytest

from repro.core.pattern import WILDCARD, TrajectoryPattern, patterns_from_cells
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid


@pytest.fixture
def grid():
    return Grid(BoundingBox.unit(), nx=10, ny=10)


class TestConstruction:
    def test_basic(self):
        p = TrajectoryPattern((1, 2, 3))
        assert len(p) == 3
        assert list(p) == [1, 2, 3]
        assert p[1] == 2

    def test_slice_returns_pattern(self):
        p = TrajectoryPattern((1, 2, 3))
        assert p[:2] == TrajectoryPattern((1, 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryPattern(())

    def test_negative_cell_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryPattern((1, -5))

    def test_wildcard_allowed(self):
        p = TrajectoryPattern((1, WILDCARD, 3))
        assert p.has_wildcards
        assert p.specified_positions() == [0, 2]

    def test_singular(self):
        p = TrajectoryPattern.singular(7)
        assert p.is_singular
        assert p.cells == (7,)

    def test_from_points(self, grid):
        pts = np.array([[0.05, 0.05], [0.15, 0.05]])
        p = TrajectoryPattern.from_points(pts, grid)
        assert p.cells == (0, 1)

    def test_hashable(self):
        assert len({TrajectoryPattern((1, 2)), TrajectoryPattern((1, 2))}) == 1

    def test_repr_shows_wildcard(self):
        assert "*" in repr(TrajectoryPattern((1, WILDCARD)))

    def test_bulk_constructor(self):
        ps = patterns_from_cells([(1,), (2, 3)])
        assert ps[1].cells == (2, 3)


class TestStructure:
    def test_concat(self):
        p = TrajectoryPattern((1, 2)).concat(TrajectoryPattern((3,)))
        assert p.cells == (1, 2, 3)

    def test_drop_first_last(self):
        p = TrajectoryPattern((1, 2, 3))
        assert p.drop_first().cells == (2, 3)
        assert p.drop_last().cells == (1, 2)

    def test_drop_on_singular_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryPattern((1,)).drop_first()

    def test_pad_wildcards(self):
        p = TrajectoryPattern((5,)).pad_wildcards(before=1, after=2)
        assert p.cells == (WILDCARD, 5, WILDCARD, WILDCARD)

    def test_pad_negative_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryPattern((5,)).pad_wildcards(before=-1)

    def test_splits(self):
        p = TrajectoryPattern((1, 2, 3))
        splits = [(a.cells, b.cells) for a, b in p.splits()]
        assert splits == [((1,), (2, 3)), ((1, 2), (3,))]

    def test_contiguous_sub_patterns(self):
        p = TrajectoryPattern((1, 2, 3))
        subs = [s.cells for s in p.contiguous_sub_patterns(2)]
        assert subs == [(1, 2), (2, 3)]

    def test_contiguous_sub_patterns_bad_length(self):
        with pytest.raises(ValueError):
            list(TrajectoryPattern((1, 2)).contiguous_sub_patterns(3))


class TestRelations:
    def test_super_pattern_definition_3(self):
        p = TrajectoryPattern((1, 2, 3))
        assert p.is_super_pattern_of(TrajectoryPattern((2, 3)))
        assert p.is_super_pattern_of(TrajectoryPattern((1, 2, 3)))
        assert not p.is_super_pattern_of(TrajectoryPattern((1, 3)))  # not contiguous
        assert p.is_proper_super_pattern_of(TrajectoryPattern((2,)))
        assert not p.is_proper_super_pattern_of(TrajectoryPattern((1, 2, 3)))

    def test_sub_pattern_inverse(self):
        small, big = TrajectoryPattern((2, 3)), TrajectoryPattern((1, 2, 3))
        assert small.is_sub_pattern_of(big)
        assert not big.is_sub_pattern_of(small)


class TestGeometryHelpers:
    def test_centers(self, grid):
        p = TrajectoryPattern((0, 1))
        centers = p.centers(grid)
        assert np.allclose(centers, [[0.05, 0.05], [0.15, 0.05]])

    def test_centers_reject_wildcards(self, grid):
        with pytest.raises(ValueError):
            TrajectoryPattern((0, WILDCARD)).centers(grid)

    def test_snapshot_distance(self, grid):
        a = TrajectoryPattern((0, 0))
        b = TrajectoryPattern((1, 2))
        d = a.snapshot_distance(b, grid)
        assert d == pytest.approx([0.1, 0.2])

    def test_snapshot_distance_length_mismatch(self, grid):
        with pytest.raises(ValueError):
            TrajectoryPattern((0,)).snapshot_distance(TrajectoryPattern((0, 1)), grid)

    def test_similarity_definition_1(self, grid):
        a = TrajectoryPattern((0, 10))
        b = TrajectoryPattern((1, 11))
        assert a.is_similar_to(b, grid, gamma=0.1)
        assert not a.is_similar_to(b, grid, gamma=0.05)
        assert not a.is_similar_to(TrajectoryPattern((0,)), grid, gamma=1.0)

    def test_similarity_is_symmetric(self, grid):
        a = TrajectoryPattern((0, 10))
        b = TrajectoryPattern((2, 12))
        for gamma in (0.05, 0.2, 0.5):
            assert a.is_similar_to(b, grid, gamma) == b.is_similar_to(a, grid, gamma)
