"""ZebraNet-style herd movement generator (paper section 6.2).

The paper's scalability data is generated *from* the ZebraNet traces [16]:
movement statistics (per-tick distance and direction) are extracted from
the real traces; zebras move in groups that share a per-tick distance and
direction; every individual gets extra jitter; and at each tick a small
number of zebras leave their group and move individually.  We follow that
procedure with the movement statistics synthesised to match the published
character of zebra movement (see :mod:`repro.datagen.movement_stats`):
mostly short grazing steps with occasional long directed treks, and
persistent headings.

All quantities are in abstract space units inside a roughly
``[0, extent]^2`` region; the grid resolution applied on top controls the
paper's ``G`` parameter independently of this generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.movement_stats import MovementStats
from repro.mobility.objects import GroundTruthPath


@dataclass(frozen=True)
class ZebraNetConfig:
    """Herd structure and movement parameters.

    The number of trajectories is ``n_groups * zebras_per_group`` (the
    paper's ``S``); ``n_ticks`` is the average trajectory length ``L``.
    """

    n_groups: int = 10
    zebras_per_group: int = 5
    n_ticks: int = 100
    extent: float = 1.0  # starting positions uniform in [0, extent]^2
    individual_jitter: float = 0.002  # per-tick per-zebra positional noise
    p_leave: float = 0.005  # per-zebra per-tick probability of going solo
    spread: float = 0.02  # initial spread of a group around its centre

    def __post_init__(self) -> None:
        if min(self.n_groups, self.zebras_per_group) < 1:
            raise ValueError("herd dimensions must be positive")
        if self.n_ticks < 2:
            raise ValueError("need at least 2 ticks")
        if self.extent <= 0:
            raise ValueError("extent must be positive")
        if not 0.0 <= self.p_leave <= 1.0:
            raise ValueError("p_leave must be a probability")

    @property
    def n_trajectories(self) -> int:
        return self.n_groups * self.zebras_per_group


class ZebraNetGenerator:
    """Group-structured movement with leave events (the paper's procedure)."""

    def __init__(
        self,
        config: ZebraNetConfig = ZebraNetConfig(),
        stats: MovementStats | None = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else MovementStats.zebra_like()

    def generate_paths(self, rng: np.random.Generator) -> list[GroundTruthPath]:
        """One path per zebra, ``n_ticks`` ticks each."""
        cfg = self.config
        n = cfg.n_trajectories
        positions = np.empty((n, cfg.n_ticks, 2))

        group_of = np.repeat(np.arange(cfg.n_groups), cfg.zebras_per_group)
        centers = rng.uniform(0, cfg.extent, size=(cfg.n_groups, 2))
        positions[:, 0, :] = centers[group_of] + rng.normal(
            scale=cfg.spread, size=(n, 2)
        )
        group_heading = rng.uniform(0, 2 * np.pi, cfg.n_groups)
        solo = np.zeros(n, dtype=bool)
        solo_heading = np.zeros(n)

        for t in range(1, cfg.n_ticks):
            # Per-group shared step (the paper: "each group is randomly
            # assigned a moving distance and a moving direction").
            group_heading = self.stats.next_heading(group_heading, rng)
            group_step = self.stats.sample_distance(cfg.n_groups, rng)
            group_delta = np.column_stack(
                [group_step * np.cos(group_heading), group_step * np.sin(group_heading)]
            )

            # Leave events: a zebra going solo keeps its own heading from
            # then on ("a certain small number of zebras will leave the
            # group and move individually").
            leaving = (~solo) & (rng.random(n) < cfg.p_leave)
            solo_heading[leaving] = group_heading[group_of[leaving]]
            solo[leaving] = True

            solo_idx = np.nonzero(solo)[0]
            delta = group_delta[group_of]
            if len(solo_idx):
                solo_heading[solo_idx] = self.stats.next_heading(
                    solo_heading[solo_idx], rng
                )
                solo_step = self.stats.sample_distance(len(solo_idx), rng)
                delta[solo_idx] = np.column_stack(
                    [
                        solo_step * np.cos(solo_heading[solo_idx]),
                        solo_step * np.sin(solo_heading[solo_idx]),
                    ]
                )

            jitter = rng.normal(scale=cfg.individual_jitter, size=(n, 2))
            positions[:, t, :] = positions[:, t - 1, :] + delta + jitter

        return [
            GroundTruthPath(
                positions[i],
                object_id=f"zebra-{i}",
                label=f"group-{group_of[i]}" if not solo[i] else "solo",
            )
            for i in range(n)
        ]
