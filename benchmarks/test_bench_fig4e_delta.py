"""Fig. 4(e): number of discovered pattern groups vs the indifference delta.

Paper: the group count decreases as delta grows -- a larger indifference
threshold makes more grid cells indistinguishable, so more of the top-k
patterns are similar and collapse into fewer groups.
"""

import pytest

from repro.experiments.fig4 import Fig4Config, run_fig4e_delta

# Grouping needs gamma (= 3 sigma) to span several cells and a sizable
# top-k, so this panel runs its own finer-grained configuration.
FIG4E = Fig4Config(k=20, n_trajectories=25, n_ticks=40, target_cells=16384)


def _mine_groups(delta_factor: float) -> int:
    sweep = run_fig4e_delta(FIG4E, delta_factors=(delta_factor,))
    return sweep.points[0].extra["n_groups"]


@pytest.mark.parametrize("factor", [0.5, 1.0, 2.0, 4.0])
def test_bench_fig4e_delta(benchmark, factor):
    benchmark.group = "fig4e-delta"
    n_groups = benchmark.pedantic(
        lambda: _mine_groups(factor), rounds=1, iterations=1
    )
    assert n_groups >= 1


def test_bench_fig4e_shape(benchmark):
    """Group count decreases from the smallest to the largest delta."""
    small, large = benchmark.pedantic(
        lambda: (_mine_groups(0.5), _mine_groups(8.0)), rounds=1, iterations=1
    )
    assert large < small, (
        f"paper: groups decrease with delta; got {small} -> {large}"
    )
