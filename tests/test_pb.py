"""Tests for the projection-based (PB) baseline miner."""

import pytest

from repro.baselines.pb import PBMiner
from repro.core.trajpattern import TrajPatternMiner

from tests.conftest import brute_force_top_k


class TestValidation:
    def test_bad_parameters(self, tiny_engine):
        with pytest.raises(ValueError):
            PBMiner(tiny_engine, k=0)
        with pytest.raises(ValueError):
            PBMiner(tiny_engine, k=1, min_length=0)
        with pytest.raises(ValueError):
            PBMiner(tiny_engine, k=1, min_length=3, max_length=2)
        with pytest.raises(ValueError):
            PBMiner(tiny_engine, k=1, max_prefixes=0)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_matches_brute_force(self, tiny_engine, k):
        result, _ = PBMiner(tiny_engine, k=k, max_length=3).mine()
        expected = brute_force_top_k(tiny_engine, k, max_length=3)
        assert [p.cells for p in result.patterns] == [c for c, _ in expected]

    def test_agrees_with_trajpattern(self, small_engine):
        """PB mines the same top-k NM patterns as TrajPattern (the paper
        uses PB precisely as an alternative miner for the same answer)."""
        pb_result, _ = PBMiner(small_engine, k=10, max_length=3).mine()
        tp_result = TrajPatternMiner(small_engine, k=10, max_length=3).mine()
        assert [p.cells for p in pb_result.patterns] == [
            p.cells for p in tp_result.patterns
        ]

    def test_min_length_variant(self, tiny_engine):
        result, _ = PBMiner(tiny_engine, k=5, max_length=3, min_length=2).mine()
        expected = brute_force_top_k(tiny_engine, 5, max_length=3, min_length=2)
        assert [p.cells for p in result.patterns] == [c for c, _ in expected]


class TestScalingBehaviour:
    def test_prefix_set_grows_with_alphabet(self, small_engine, tiny_engine):
        """The PB pathology: prefix sets scale with the alphabet size."""
        _, small_stats = PBMiner(small_engine, k=5, max_length=2).mine()
        _, tiny_stats = PBMiner(tiny_engine, k=5, max_length=2).mine()
        assert small_stats.prefix_set_sizes[0] > tiny_stats.prefix_set_sizes[0]

    def test_evaluates_more_than_trajpattern(self, small_engine):
        """PB's loose bound forces far more evaluations than TrajPattern's
        min-max bound does -- the Fig. 4 story."""
        _, pb_stats = PBMiner(small_engine, k=5, max_length=3).mine()
        tp_result = TrajPatternMiner(small_engine, k=5, max_length=3).mine()
        assert pb_stats.prefixes_evaluated > tp_result.stats.candidates_evaluated

    def test_truncation_flag(self, tiny_engine):
        # A generous k keeps omega low, so the loose PB bound retains far
        # more 2-prefixes than a cap of 3 allows.
        _, stats = PBMiner(tiny_engine, k=40, max_length=3, max_prefixes=3).mine()
        assert stats.truncated

    def test_stats_populated(self, tiny_engine):
        _, stats = PBMiner(tiny_engine, k=3, max_length=3).mine()
        assert stats.levels == 3
        assert len(stats.prefix_set_sizes) == 3
        assert stats.wall_time_s > 0
