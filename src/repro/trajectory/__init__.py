"""Trajectory data model (paper section 3.2).

The input to the miner is a set of *uncertain trajectories*: per object, a
sequence of snapshots ``(l_i, sigma_i)`` where ``l_i`` is the expected
location and ``sigma_i`` the standard deviation of the true location's
normal distribution at synchronised time ``i``.

* :class:`~repro.trajectory.trajectory.UncertainTrajectory` -- one object's
  sequence of Gaussian snapshots.
* :class:`~repro.trajectory.dataset.TrajectoryDataset` -- the mining input,
  a collection of trajectories with convenience constructors.
* :func:`~repro.trajectory.velocity.to_velocity_trajectory` -- the
  location-to-velocity transform of section 3.2.
* :mod:`~repro.trajectory.synchronize` -- interpolation of asynchronous
  location reports onto a synchronous snapshot series.
* :mod:`~repro.trajectory.io` -- JSONL / CSV persistence.
"""

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.resample import decimate, refine, resample_dataset
from repro.trajectory.io import (
    load_dataset_csv,
    load_dataset_jsonl,
    save_dataset_csv,
    save_dataset_jsonl,
)
from repro.trajectory.synchronize import LocationReport, synchronize_reports
from repro.trajectory.trajectory import UncertainTrajectory
from repro.trajectory.velocity import to_velocity_dataset, to_velocity_trajectory

__all__ = [
    "UncertainTrajectory",
    "TrajectoryDataset",
    "to_velocity_trajectory",
    "to_velocity_dataset",
    "LocationReport",
    "synchronize_reports",
    "load_dataset_jsonl",
    "decimate",
    "refine",
    "resample_dataset",
    "save_dataset_jsonl",
    "load_dataset_csv",
    "save_dataset_csv",
]
