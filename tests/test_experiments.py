"""Smoke tests for the experiment harness at miniature scale.

The benchmarks exercise the experiments at meaningful sizes; these tests
only check that each harness runs end to end, returns a well-formed result
and renders a table.
"""

import pytest

from repro.datagen.bus import BusFleetConfig
from repro.experiments import (
    Fig3Config,
    Fig4Config,
    Table1Config,
    run_fig3,
    run_fig4a_k,
    run_fig4b_trajectories,
    run_fig4c_length,
    run_fig4d_grids,
    run_fig4e_delta,
    run_prob_model_ablation,
    run_pruning_ablation,
    run_table1,
)
from repro.experiments.datasets import (
    bus_fleet_paths,
    bus_velocity_dataset,
    grid_with_cells,
    zebranet_dataset,
)

TINY_FLEET = BusFleetConfig(n_routes=2, buses_per_route=2, n_days=2, n_ticks=40)
TINY_FIG4 = Fig4Config(k=3, n_trajectories=10, n_ticks=25, target_cells=400)


class TestDatasets:
    def test_bus_velocity_dataset_shape(self):
        paths = bus_fleet_paths(seed=1, config=TINY_FLEET)
        dataset = bus_velocity_dataset(paths, seed=1)
        assert len(dataset) == len(paths)
        assert dataset.metadata["kind"] == "velocity"

    def test_zebranet_dataset_sizing(self):
        dataset = zebranet_dataset(n_trajectories=13, n_ticks=20)
        assert len(dataset) == 13
        assert all(len(t) == 20 for t in dataset)

    def test_grid_with_cells_approximates_target(self):
        dataset = zebranet_dataset(n_trajectories=5, n_ticks=20)
        grid = grid_with_cells(dataset, 900)
        assert 600 <= grid.n_cells <= 1400

    def test_grid_with_cells_validation(self):
        dataset = zebranet_dataset(n_trajectories=5, n_ticks=20)
        with pytest.raises(ValueError):
            grid_with_cells(dataset, 0)


class TestTable1:
    def test_runs_and_renders(self):
        config = Table1Config(k=10, max_length=4, fleet=TINY_FLEET)
        result = run_table1(config)
        assert result.nm_mean_length >= 1.0
        assert result.match_mean_length >= 1.0
        text = result.render()
        assert "match" in text and "NM" in text

    def test_nm_patterns_at_least_as_long(self):
        """The T1 claim, at miniature scale."""
        config = Table1Config(k=10, max_length=4, fleet=TINY_FLEET)
        result = run_table1(config)
        assert result.nm_mean_length >= result.match_mean_length


class TestFig3:
    def test_runs_and_renders(self):
        config = Fig3Config(
            k=10, max_length=5, fleet=TINY_FLEET, models=("lm",)
        )
        result = run_fig3(config)
        assert len(result.rows) == 2  # one model x two measures
        assert {row.measure for row in result.rows} == {"nm", "match"}
        assert result.reduction("lm", "nm") <= 1.0
        assert "reduction" in result.render()

    def test_unknown_row_raises(self):
        config = Fig3Config(
            k=10, max_length=5, fleet=TINY_FLEET, models=("lm",)
        )
        result = run_fig3(config)
        with pytest.raises(KeyError):
            result.reduction("lm", "support")


class TestFig4:
    def test_fig4a_shape(self):
        result = run_fig4a_k(TINY_FIG4, ks=(2, 3), with_pb=True)
        assert result.xs() == [2, 3]
        assert len(result.trajpattern_series()) == 2
        assert len(result.pb_series()) == 2
        assert all(t > 0 for t in result.trajpattern_series())
        assert "Fig. 4(a)" in result.render()

    def test_fig4a_without_pb(self):
        result = run_fig4a_k(TINY_FIG4, ks=(2,), with_pb=False)
        assert result.pb_series() == []
        assert "-" in result.render()

    def test_fig4b_shape(self):
        result = run_fig4b_trajectories(TINY_FIG4, sizes=(8, 12), with_pb=False)
        assert result.xs() == [8, 12]
        assert all(t > 0 for t in result.trajpattern_series())

    def test_fig4c_shape(self):
        result = run_fig4c_length(TINY_FIG4, lengths=(15, 25), with_pb=False)
        assert result.xs() == [15, 25]

    def test_fig4d_reports_active_cells(self):
        result = run_fig4d_grids(TINY_FIG4, grid_counts=(100, 400), with_pb=False)
        actives = [p.extra["active_cells"] for p in result.points]
        assert actives[1] >= actives[0]

    def test_fig4e_reports_groups(self):
        result = run_fig4e_delta(TINY_FIG4, delta_factors=(1.0, 3.0))
        counts = [p.extra["n_groups"] for p in result.points]
        assert all(c >= 1 for c in counts)
        # More indifference => no more groups than before (weak check at
        # tiny scale: non-strict).
        assert counts[-1] <= counts[0]


class TestAblations:
    def test_pruning_ablation_result_preserving(self):
        result = run_pruning_ablation(TINY_FIG4)
        assert len(result.rows) == 4
        assert result.results_identical()
        assert "pruning" in result.render()

    def test_prob_model_ablation_overlap(self):
        result = run_prob_model_ablation(TINY_FIG4)
        assert 0.0 <= result.overlap() <= 1.0
        assert result.overlap() >= 0.5  # box vs disk rank very similarly
        assert "box" in result.render()
