"""The differential oracle, tested as a test: ULP math, frontier, full runs.

The oracle is the PR's load-bearing artifact -- if its ULP arithmetic or
its path plumbing is wrong, every agreement it reports is vacuous.  So the
ULP mapping is unit-tested against IEEE-754 ground truth
(``np.nextafter``), the frontier generator is pinned deterministic, and
``run_oracle`` runs for real: the default seed through the *full* path
matrix (including the live-server round-trip), plus hypothesis-drawn
seeds through the engine paths.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import cli
from repro.testkit.oracle import (
    ULP_BUDGETS,
    PathCheck,
    candidate_frontier,
    max_ulps,
    run_oracle,
    ulps_between,
)
from repro.testkit.datasets import DEFAULT_SEEDS, oracle_setup
from repro.core.engine import NMEngine


class TestUlpMath:
    def test_identical_values_are_zero(self):
        assert ulps_between(1.5, 1.5) == 0
        assert ulps_between(0.0, -0.0) == 0  # both zeros map to rank 0

    def test_adjacent_floats_are_one_ulp(self):
        for x in (1.0, -1.0, 1e-300, -3.7e5):
            up = float(np.nextafter(x, np.inf))
            assert ulps_between(x, up) == 1
            assert ulps_between(up, x) == 1  # symmetric

    def test_distance_accumulates(self):
        x = 2.0
        y = x
        for _ in range(5):
            y = float(np.nextafter(y, np.inf))
        assert ulps_between(x, y) == 5

    def test_crossing_zero(self):
        tiny = float(np.nextafter(0.0, np.inf))
        assert ulps_between(-tiny, tiny) == 2

    def test_nan_vs_number_is_incomparable(self):
        assert ulps_between(float("nan"), 1.0) > max(ULP_BUDGETS.values())
        assert ulps_between(float("nan"), float("nan")) == 0

    def test_max_ulps_takes_the_worst_element(self):
        a = [1.0, 2.0, 3.0]
        b = [1.0, float(np.nextafter(2.0, np.inf)), 3.0]
        assert max_ulps(a, b) == 1
        assert max_ulps([], []) == 0

    def test_max_ulps_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            max_ulps([1.0, 2.0], [1.0])


class TestFrontier:
    def test_deterministic_for_a_seed(self):
        setup = oracle_setup(101, quick=True)
        engine = NMEngine(setup.dataset, setup.grid, setup.config)
        first = candidate_frontier(engine, 101, 12)
        second = candidate_frontier(engine, 101, 12)
        assert [p.cells for p in first] == [p.cells for p in second]
        assert len(first) == 12

    def test_mixes_singulars_and_longer_patterns(self):
        setup = oracle_setup(202, quick=True)
        engine = NMEngine(setup.dataset, setup.grid, setup.config)
        frontier = candidate_frontier(engine, 202, 12)
        lengths = {len(p) for p in frontier}
        assert 1 in lengths
        assert lengths - {1}  # at least one multi-cell candidate


class TestPathCheck:
    def test_over_budget_fails_and_describes(self):
        check = PathCheck(path="parallel[2]", budget_ulps=4, nm_ulps=9, match_ulps=0)
        assert not check.ok
        assert "FAIL" in check.describe()
        assert "nm=9" in check.describe()

    def test_within_budget_is_ok(self):
        check = PathCheck(path="scalar", budget_ulps=16, nm_ulps=16, match_ulps=3)
        assert check.ok
        assert check.describe().startswith("ok")


class TestRunOracle:
    def test_default_seed_full_matrix(self):
        # The whole matrix, serve path included, at quick size.
        report = run_oracle(DEFAULT_SEEDS[0], quick=True, jobs_grid=(1, 2))
        assert report.ok, "\n" + report.describe()
        paths = [c.path.split("[")[0] for c in report.checks]
        assert paths == [
            "scalar",
            "cache-cold",
            "cache-warm",
            "parallel",
            "parallel",
            "streaming",
            "incremental",
            "incremental",
            "store",
            "store-parallel",
            "store-parallel",
            "serve",
        ]
        incremental = next(c for c in report.checks if c.path == "incremental")
        assert incremental.budget_ulps == 0  # the merge is bit-exact or fail
        warm_mine = next(
            c for c in report.checks if c.path == "incremental[warm-mine]"
        )
        assert warm_mine.budget_ulps == 0
        store = next(c for c in report.checks if c.path == "store")
        assert store.budget_ulps == 0  # bit-exact or fail
        warm = next(c for c in report.checks if c.path == "cache-warm")
        assert warm.detail == "hit"
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_tightened_budget_detects_reassociation(self):
        # Sanity that the budgets are doing work: an impossible budget of
        # zero on the scalar path must FAIL (the scalar reference really
        # does differ from the vectorised engine by a few ULPs).
        report = run_oracle(
            DEFAULT_SEEDS[0],
            quick=True,
            jobs_grid=(),
            include_serve=False,
            budgets={"scalar": 0},
        )
        scalar = next(c for c in report.checks if c.path == "scalar")
        assert not scalar.ok
        assert not report.ok

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_arbitrary_seeds_agree(self, seed):
        # Engine paths only (no sockets/processes inside hypothesis): the
        # scalar reference, the cache round-trip and streaming must agree
        # for any seed, not just the curated defaults.
        report = run_oracle(seed, quick=True, jobs_grid=(), include_serve=False)
        assert report.ok, "\n" + report.describe()


class TestSelfcheckCli:
    def test_quick_selfcheck_exits_zero(self, capsys):
        code = cli.main(
            [
                "selfcheck",
                "--quick",
                "--seeds",
                "101",
                "--jobs-grid",
                "1,2",
                "--no-serve",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "seed 101" in out
        assert "1/1 seeds agree" in out

    def test_selfcheck_reports_failure_on_impossible_budget(self, capsys, monkeypatch):
        # Force a failure through the real CLI path by zeroing every
        # budget: the command must exit non-zero and say FAIL.
        from repro.testkit import oracle

        monkeypatch.setattr(
            oracle, "ULP_BUDGETS", {k: 0 for k in oracle.ULP_BUDGETS}
        )
        code = cli.main(
            ["selfcheck", "--quick", "--seeds", "101", "--jobs-grid", "1", "--no-serve"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out


class TestDistOraclePath:
    def test_dist_checks_present_and_zero_ulps(self):
        # The distributed path folds per-span results in global span order,
        # exactly like the same-width parallel engine, and the NDJSON wire
        # round-trips float64 exactly -- so the budget is zero, and it holds
        # even with a real socket hop in the mix.
        report = run_oracle(
            DEFAULT_SEEDS[0],
            quick=True,
            jobs_grid=(1, 2),
            include_serve=False,
            include_dist=True,
        )
        dist_checks = [c for c in report.checks if c.path.startswith("dist[")]
        assert {c.path for c in dist_checks} == {"dist[1]", "dist[2]"}
        for check in dist_checks:
            assert check.budget_ulps == 0
            assert check.nm_ulps == 0, check.describe()
            assert check.match_ulps == 0, check.describe()
        assert report.ok, "\n" + report.describe()

    def test_dist_flag_via_cli(self, capsys):
        code = cli.main(
            [
                "selfcheck",
                "--quick",
                "--dist",
                "--seeds",
                "101",
                "--jobs-grid",
                "1",
                "--no-serve",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dist[1]" in out
        assert "quick+dist" in out
