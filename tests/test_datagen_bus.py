"""Tests for the bus-fleet generator."""

import numpy as np
import pytest

from repro.datagen.bus import BusFleetConfig, BusFleetGenerator, BusRoute


@pytest.fixture
def config():
    return BusFleetConfig(
        n_routes=2, buses_per_route=3, n_days=2, n_ticks=40, n_stops=2
    )


class TestBusRoute:
    def test_validation(self):
        with pytest.raises(ValueError):
            BusRoute(np.zeros((2, 2)), np.empty(0), "r")

    def test_length_of_unit_square_loop(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        route = BusRoute(square, np.empty(0), "r")
        assert route.length == pytest.approx(4.0)

    def test_position_at_wraps(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        route = BusRoute(square, np.empty(0), "r")
        assert np.allclose(route.position_at(0.5), [0.5, 0.0])
        assert np.allclose(route.position_at(4.5), [0.5, 0.0])
        assert np.allclose(route.position_at(1.5), [1.0, 0.5])

    def test_distance_to_next_stop(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        route = BusRoute(square, np.array([1.0, 3.0]), "r")
        assert route.distance_to_next_stop(0.5) == pytest.approx(0.5)
        assert route.distance_to_next_stop(3.5) == pytest.approx(1.5)  # wraps

    def test_no_stops(self):
        square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        route = BusRoute(square, np.empty(0), "r")
        assert route.distance_to_next_stop(0.0) == float("inf")


class TestGenerator:
    def test_path_count_and_shape(self, config, rng):
        paths = BusFleetGenerator(config).generate_paths(rng)
        assert len(paths) == 2 * 3 * 2
        assert all(len(p) == 40 for p in paths)

    def test_labels_are_routes(self, config, rng):
        paths = BusFleetGenerator(config).generate_paths(rng)
        assert {p.label for p in paths} == {"route-0", "route-1"}

    def test_deterministic_given_seed(self, config):
        a = BusFleetGenerator(config).generate_paths(np.random.default_rng(5))
        b = BusFleetGenerator(config).generate_paths(np.random.default_rng(5))
        assert all(np.allclose(x.positions, y.positions) for x, y in zip(a, b))

    def test_buses_stay_on_route(self, config, rng):
        gen = BusFleetGenerator(config)
        routes = gen.make_routes(np.random.default_rng(9))
        # Drive one bus and check every position is on its route polyline.
        path = gen._drive(routes[0], 0.0, np.random.default_rng(1), "x")
        arcs = np.linspace(0, routes[0].length, 3000, endpoint=False)
        polyline = np.array([routes[0].position_at(a) for a in arcs])
        for position in path.positions:
            distance = np.hypot(*(polyline - position).T).min()
            assert distance < 0.01

    def test_dwell_produces_repeated_positions(self, config, rng):
        paths = BusFleetGenerator(config).generate_paths(rng)
        # With stops and dwell, some consecutive positions must coincide.
        found_dwell = any(
            np.any(np.all(np.diff(p.positions, axis=0) == 0.0, axis=1))
            for p in paths
        )
        assert found_dwell

    def test_same_route_buses_share_velocity_motifs(self, config, rng):
        """Buses on one route revisit the same velocity values -- the
        property the Fig. 3 experiment depends on."""
        paths = BusFleetGenerator(config).generate_paths(rng)
        route0 = [p for p in paths if p.label == "route-0"]
        a, b = route0[0].velocities(), route0[1].velocities()
        # Compare velocity direction histograms (coarse 8-sector bins).
        def sector_histogram(v):
            moving = np.hypot(v[:, 0], v[:, 1]) > 1e-9
            angles = np.arctan2(v[moving, 1], v[moving, 0])
            return np.histogram(angles, bins=8, range=(-np.pi, np.pi))[0] / max(
                moving.sum(), 1
            )

        overlap = np.minimum(sector_histogram(a), sector_histogram(b)).sum()
        assert overlap > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BusFleetConfig(n_routes=0)
        with pytest.raises(ValueError):
            BusFleetConfig(n_ticks=1)
        with pytest.raises(ValueError):
            BusFleetConfig(n_waypoints=2)
        with pytest.raises(ValueError):
            BusFleetConfig(n_stops=99)
        with pytest.raises(ValueError):
            BusFleetConfig(cruise_speed=0.0)
