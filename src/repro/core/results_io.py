"""Persistence for mined patterns and mining results.

A mined pattern library is only useful if it can outlive the mining
session: the Fig. 3 deployment mines offline and predicts online.  This
module serialises :class:`~repro.core.trajpattern.MiningResult` (patterns,
NM values, threshold, stats, groups) together with the grid geometry the
cell ids refer to -- a pattern file without its grid is meaningless, so
the two always travel together.

Format: a single JSON document with a version tag; forward-incompatible
files are rejected loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.groups import PatternGroup
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import MinerStats, MiningResult
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid

_FORMAT = "repro.mining-result"
_VERSION = 1


def save_mining_result(
    result: MiningResult, grid: Grid, path: str | Path
) -> None:
    """Write ``result`` (and the grid its cells refer to) to ``path``."""
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "grid": {
            "min_x": grid.bbox.min_x,
            "min_y": grid.bbox.min_y,
            "max_x": grid.bbox.max_x,
            "max_y": grid.bbox.max_y,
            "nx": grid.nx,
            "ny": grid.ny,
        },
        "patterns": [list(p.cells) for p in result.patterns],
        "nm_values": result.nm_values,
        "omega": result.omega,
        "stats": {
            "iterations": result.stats.iterations,
            "candidates_generated": result.stats.candidates_generated,
            "candidates_evaluated": result.stats.candidates_evaluated,
            "candidates_bounded": result.stats.candidates_bounded,
            "candidates_bound_pruned": result.stats.candidates_bound_pruned,
            "candidates_cached": result.stats.candidates_cached,
            "patterns_pruned": result.stats.patterns_pruned,
            "final_q_size": result.stats.final_q_size,
            "wall_time_s": result.stats.wall_time_s,
        },
        "groups": (
            None
            if result.groups is None
            else [[list(p.cells) for p in g.patterns] for g in result.groups]
        ),
    }
    Path(path).write_text(json.dumps(document, indent=1), encoding="utf-8")


def load_mining_result(path: str | Path) -> tuple[MiningResult, Grid]:
    """Read a result previously written by :func:`save_mining_result`.

    Returns ``(result, grid)``; raises ``ValueError`` on foreign or
    future-versioned files.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a JSON document: {exc}") from exc
    if document.get("format") != _FORMAT:
        raise ValueError(f"{path}: not a mining-result file")
    if document.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported version {document.get('version')!r}"
        )

    g = document["grid"]
    grid = Grid(
        BoundingBox(g["min_x"], g["min_y"], g["max_x"], g["max_y"]),
        nx=g["nx"],
        ny=g["ny"],
    )
    groups = None
    if document["groups"] is not None:
        groups = [
            PatternGroup(tuple(TrajectoryPattern(tuple(c)) for c in member_cells))
            for member_cells in document["groups"]
        ]
    result = MiningResult(
        patterns=[TrajectoryPattern(tuple(c)) for c in document["patterns"]],
        nm_values=[float(v) for v in document["nm_values"]],
        omega=float(document["omega"]),
        stats=MinerStats(**document["stats"]),
        groups=groups,
    )
    return result, grid
