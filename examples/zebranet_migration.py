"""ZebraNet: mining migration patterns of animal herds (section 6.2 data).

Generates group-structured herd movement with the paper's procedure
(shared per-group steps, per-animal jitter, group-leaving events), adds
tracking uncertainty, and mines location patterns -- the "migration
patterns" use-case from the paper's introduction.  Also demonstrates the
support-measure baseline losing the herd corridor under the same noise.

Run:  python examples/zebranet_migration.py
"""

import numpy as np

from repro.baselines.support import SupportMiner
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.observe import observe_paths
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator


def main() -> None:
    rng = np.random.default_rng(20040601)
    config = ZebraNetConfig(
        n_groups=8, zebras_per_group=6, n_ticks=120, p_leave=0.01
    )
    paths = ZebraNetGenerator(config).generate_paths(rng)
    solo = sum(1 for p in paths if p.label == "solo")
    print(f"{len(paths)} zebras in {config.n_groups} groups ({solo} went solo)")

    # Sensor tracking: 0.01 space-unit standard deviation per snapshot.
    dataset = observe_paths(paths, sigma=0.01, rng=rng)
    grid = dataset.make_grid(0.02)
    print(f"grid: {grid}")

    engine = NMEngine(dataset, grid, EngineConfig(delta=0.02, min_prob=1e-4))
    result = TrajPatternMiner(engine, k=20, min_length=3, max_length=6).mine(
        discover_groups=True
    )

    print(f"\ntop NM migration patterns (mean length {result.mean_length():.1f}):")
    for pattern, nm in result.as_pairs()[:8]:
        waypoints = " -> ".join(
            f"({c.x:.2f},{c.y:.2f})" for c in map(grid.cell_center, pattern.cells)
        )
        print(f"  NM {nm:9.1f}  {waypoints}")

    print(f"\n{len(result.groups)} pattern groups cover the top-{len(result)}:")
    for group in result.groups[:6]:
        print(f"  group of {len(group)} length-{group.length} pattern(s)")

    # Contrast: the classic support measure on the same (imprecise) data.
    support = SupportMiner(dataset, grid, k=5, min_length=3).mine()
    print("\nsupport-measure baseline (most-likely cell collapse):")
    for pattern, count in support.as_pairs():
        print(f"  support {count:3d}  {pattern.cells}")
    print(
        "note how low the supports are: exact cell repetition is rare under "
        "imprecision, which is why the paper replaces support with NM."
    )


if __name__ == "__main__":
    main()
