"""The :class:`TrajectoryDataset` container -- the miner's input ``D``."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.trajectory import UncertainTrajectory


class TrajectoryDataset:
    """An ordered collection of uncertain trajectories plus free-form metadata.

    The dataset is the unit every miner, engine and experiment consumes.  It
    is intentionally a thin, immutable-ish container: derived structures
    (probability indexes, grids) are built by the components that need them.
    """

    __slots__ = ("trajectories", "metadata")

    def __init__(
        self,
        trajectories: Sequence[UncertainTrajectory] | Iterable[UncertainTrajectory],
        metadata: dict | None = None,
    ) -> None:
        self.trajectories: tuple[UncertainTrajectory, ...] = tuple(trajectories)
        self.metadata: dict = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[UncertainTrajectory]:
        return iter(self.trajectories)

    def __getitem__(self, index: int) -> UncertainTrajectory:
        return self.trajectories[index]

    def __repr__(self) -> str:
        return (
            f"TrajectoryDataset({len(self)} trajectories, "
            f"total {self.total_snapshots()} snapshots)"
        )

    # -- aggregate statistics --------------------------------------------------

    def total_snapshots(self) -> int:
        """Sum of trajectory lengths (the complexity parameter ``N * L``)."""
        return sum(len(t) for t in self.trajectories)

    def mean_length(self) -> float:
        """Average trajectory length ``L`` (Fig. 4(c)'s sweep parameter)."""
        if not self.trajectories:
            return 0.0
        return self.total_snapshots() / len(self.trajectories)

    def all_means(self) -> np.ndarray:
        """All snapshot means stacked into one ``(total, 2)`` array."""
        if not self.trajectories:
            return np.empty((0, 2))
        return np.concatenate([t.means for t in self.trajectories], axis=0)

    def all_sigmas(self) -> np.ndarray:
        """All snapshot sigmas concatenated into one ``(total,)`` array."""
        if not self.trajectories:
            return np.empty(0)
        return np.concatenate([t.sigmas for t in self.trajectories])

    def lengths(self) -> np.ndarray:
        """Per-trajectory snapshot counts as an int64 array."""
        return np.asarray([len(t) for t in self.trajectories], dtype=np.int64)

    def bounding_box(self, n_sigmas: float = 0.0) -> BoundingBox:
        """Bounding box of every snapshot mean, optionally sigma-padded."""
        if not self.trajectories:
            raise ValueError("empty dataset has no bounding box")
        box = BoundingBox.of_points(self.all_means())
        if n_sigmas > 0:
            max_sigma = max(float(t.sigmas.max()) for t in self.trajectories)
            box = box.expand(n_sigmas * max_sigma)
        return box

    def max_sigma(self) -> float:
        """Largest snapshot sigma in the dataset."""
        if not self.trajectories:
            raise ValueError("empty dataset has no sigmas")
        return max(float(t.sigmas.max()) for t in self.trajectories)

    def make_grid(self, cell_size: float, margin_sigmas: float = 4.0) -> Grid:
        """Grid covering the dataset with square cells of side ``cell_size``.

        The extent is padded by ``margin_sigmas`` standard deviations so
        that cells near the border still capture the probability mass of
        border snapshots.
        """
        return Grid.cover(self.bounding_box(n_sigmas=margin_sigmas), cell_size)

    # -- functional helpers -------------------------------------------------------

    def filter(self, predicate: Callable[[UncertainTrajectory], bool]) -> "TrajectoryDataset":
        """Dataset with only the trajectories satisfying ``predicate``."""
        return TrajectoryDataset(
            [t for t in self.trajectories if predicate(t)], metadata=self.metadata
        )

    def split(self, n_first: int) -> tuple["TrajectoryDataset", "TrajectoryDataset"]:
        """Split into the first ``n_first`` trajectories and the rest.

        Used for the Fig. 3 protocol: mine on 450 trajectories, evaluate
        prediction on the held-out 50.
        """
        if not 0 <= n_first <= len(self):
            raise ValueError(f"cannot take first {n_first} of {len(self)} trajectories")
        return (
            TrajectoryDataset(self.trajectories[:n_first], metadata=self.metadata),
            TrajectoryDataset(self.trajectories[n_first:], metadata=self.metadata),
        )

    def subset(self, indices: Sequence[int]) -> "TrajectoryDataset":
        """Dataset restricted to the given trajectory indices (order preserved)."""
        return TrajectoryDataset(
            [self.trajectories[i] for i in indices], metadata=self.metadata
        )

    def shuffled(self, rng: np.random.Generator) -> "TrajectoryDataset":
        """Dataset with trajectory order permuted by ``rng``."""
        order = rng.permutation(len(self.trajectories))
        return self.subset(list(order))
