"""Snapshot-interval resampling (the section 5 "frequency of snapshots" knob).

Section 5: "For the snapshot interval, we can use a small time unit ... It
can be specified by a domain expert."  Different intervals trade resolution
against cost and pattern granularity, and a library user re-mining at a
coarser interval should not need to regenerate their data.  This module
resamples existing uncertain trajectories:

* :func:`decimate` keeps every ``factor``-th snapshot -- the estimates and
  sigmas at the retained instants are unchanged (they are the server's
  actual knowledge at those times).
* :func:`refine` inserts linearly interpolated snapshots between existing
  ones.  Interpolated means are convex combinations of the neighbouring
  Gaussians, so (treating the endpoint errors as independent) the
  interpolant's standard deviation is
  ``sqrt((1-w)^2 sigma_i^2 + w^2 sigma_{i+1}^2)`` -- *smaller* than either
  endpoint, which correctly reflects that averaging reduces variance, but
  it ignores the motion model's interpolation error; callers who know a
  bound on that error can inflate via ``extra_sigma``.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def decimate(trajectory: UncertainTrajectory, factor: int) -> UncertainTrajectory:
    """Keep every ``factor``-th snapshot (starting from the first)."""
    if factor < 1:
        raise ValueError("factor must be at least 1")
    if factor == 1:
        return trajectory
    means = trajectory.means[::factor]
    sigmas = trajectory.sigmas[::factor]
    if len(means) < 1:
        raise ValueError("decimation removed every snapshot")
    return UncertainTrajectory(
        means,
        sigmas,
        object_id=trajectory.object_id,
        start_time=trajectory.start_time,
        dt=trajectory.dt * factor,
    )


def refine(
    trajectory: UncertainTrajectory, factor: int, extra_sigma: float = 0.0
) -> UncertainTrajectory:
    """Insert ``factor - 1`` interpolated snapshots between existing ones.

    Parameters
    ----------
    trajectory:
        Source trajectory (at least two snapshots when ``factor > 1``).
    factor:
        Output rate multiplier: the result has
        ``(len - 1) * factor + 1`` snapshots.
    extra_sigma:
        Added in quadrature to interpolated snapshots' sigmas to account
        for motion between the endpoints (0 trusts linear motion).
    """
    if factor < 1:
        raise ValueError("factor must be at least 1")
    if extra_sigma < 0:
        raise ValueError("extra_sigma must be non-negative")
    if factor == 1:
        return trajectory
    if len(trajectory) < 2:
        raise ValueError("refining needs at least two snapshots")

    n = len(trajectory)
    out_means = []
    out_sigmas = []
    for i in range(n - 1):
        m0, m1 = trajectory.means[i], trajectory.means[i + 1]
        s0, s1 = trajectory.sigmas[i], trajectory.sigmas[i + 1]
        for j in range(factor):
            w = j / factor
            out_means.append((1.0 - w) * m0 + w * m1)
            if j == 0:
                out_sigmas.append(s0)
            else:
                interpolated = np.sqrt(
                    (1.0 - w) ** 2 * s0**2 + w**2 * s1**2 + extra_sigma**2
                )
                out_sigmas.append(interpolated)
    out_means.append(trajectory.means[-1])
    out_sigmas.append(trajectory.sigmas[-1])
    return UncertainTrajectory(
        np.asarray(out_means),
        np.asarray(out_sigmas),
        object_id=trajectory.object_id,
        start_time=trajectory.start_time,
        dt=trajectory.dt / factor,
    )


def resample_dataset(
    dataset: TrajectoryDataset, factor: int, extra_sigma: float = 0.0
) -> TrajectoryDataset:
    """Resample every trajectory: ``factor > 0`` decimates by ``factor``,
    ``factor < 0`` refines by ``-factor`` (a deliberate single-knob API so
    interval sweeps read as ``for f in (-2, 1, 2, 4)``)."""
    if factor == 0:
        raise ValueError("factor 0 is meaningless; use 1 for identity")
    if factor >= 1:
        trajectories = [decimate(t, factor) for t in dataset]
    else:
        trajectories = [refine(t, -factor, extra_sigma) for t in dataset]
    metadata = dict(dataset.metadata)
    metadata["resample_factor"] = factor
    return TrajectoryDataset(trajectories, metadata=metadata)
