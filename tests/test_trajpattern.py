"""Tests for the TrajPattern miner, including brute-force oracle checks.

The tiny-corridor fixture keeps the active alphabet small enough to
enumerate *every* pattern up to a length cap, so the miner's top-k can be
compared against ground truth exactly.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

from tests.conftest import brute_force_top_k


class TestValidation:
    def test_bad_parameters(self, tiny_engine):
        with pytest.raises(ValueError):
            TrajPatternMiner(tiny_engine, k=0)
        with pytest.raises(ValueError):
            TrajPatternMiner(tiny_engine, k=1, min_length=0)
        with pytest.raises(ValueError):
            TrajPatternMiner(tiny_engine, k=1, min_length=3, max_length=2)
        with pytest.raises(ValueError):
            TrajPatternMiner(tiny_engine, k=1, max_iterations=0)

    def test_no_active_cells_rejected(self, rng):
        # Grid entirely away from the data.
        traj = UncertainTrajectory(np.full((5, 2), 100.0), 0.01)
        dataset = TrajectoryDataset([traj])
        grid = Grid(BoundingBox.unit(), nx=3, ny=3)
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.1, min_prob=1e-4))
        with pytest.raises(ValueError, match="no active grid cells"):
            TrajPatternMiner(engine, k=1).mine()


class TestOracle:
    """Exactness against exhaustive enumeration."""

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_top_k_matches_brute_force(self, tiny_engine, k):
        result = TrajPatternMiner(tiny_engine, k=k, max_length=4).mine()
        expected = brute_force_top_k(tiny_engine, k, max_length=4)
        got = [(p.cells, nm) for p, nm in result.as_pairs()]
        assert [c for c, _ in got] == [c for c, _ in expected]
        for (_, nm_got), (_, nm_exp) in zip(got, expected):
            assert nm_got == pytest.approx(nm_exp, abs=1e-9)

    def test_min_length_variant_matches_brute_force(self, tiny_engine):
        k = 5
        result = TrajPatternMiner(
            tiny_engine, k=k, min_length=2, max_length=4
        ).mine()
        expected = brute_force_top_k(tiny_engine, k, max_length=4, min_length=2)
        assert [p.cells for p in result.patterns] == [c for c, _ in expected]

    def test_unbounded_length_converges_to_same_top(self, tiny_engine):
        """Without a length cap the miner still terminates and the top-k is
        at least as good as the capped brute force."""
        result = TrajPatternMiner(tiny_engine, k=3).mine()
        expected = brute_force_top_k(tiny_engine, 3, max_length=4)
        assert result.nm_values[0] == pytest.approx(expected[0][1], abs=1e-9)
        assert len(result.patterns) == 3


class TestAblations:
    """Both pruning mechanisms are result-preserving."""

    @pytest.mark.parametrize(
        "extension,bound",
        [(True, True), (False, True), (True, False), (False, False)],
    )
    def test_pruning_preserves_results(self, tiny_engine, extension, bound):
        reference = TrajPatternMiner(tiny_engine, k=5, max_length=3).mine()
        variant = TrajPatternMiner(
            tiny_engine,
            k=5,
            max_length=3,
            use_extension_pruning=extension,
            use_bound_pruning=bound,
        ).mine()
        assert [p.cells for p in variant.patterns] == [
            p.cells for p in reference.patterns
        ]

    def test_bound_pruning_reduces_evaluations(self, small_engine):
        pruned = TrajPatternMiner(small_engine, k=5, max_length=3).mine()
        exhaustive = TrajPatternMiner(
            small_engine, k=5, max_length=3, use_bound_pruning=False
        ).mine()
        assert (
            pruned.stats.candidates_evaluated
            < exhaustive.stats.candidates_evaluated
        )
        assert [p.cells for p in pruned.patterns] == [
            p.cells for p in exhaustive.patterns
        ]

    def test_extension_pruning_shrinks_q(self, small_engine):
        with_pruning = TrajPatternMiner(small_engine, k=5, max_length=3).mine()
        without = TrajPatternMiner(
            small_engine, k=5, max_length=3, use_extension_pruning=False
        ).mine()
        assert with_pruning.stats.final_q_size <= without.stats.final_q_size


class TestBehaviour:
    def test_deterministic_across_runs(self, small_engine):
        a = TrajPatternMiner(small_engine, k=10, max_length=3).mine()
        b = TrajPatternMiner(small_engine, k=10, max_length=3).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]

    def test_result_sorted_and_sized(self, small_engine):
        result = TrajPatternMiner(small_engine, k=10, max_length=3).mine()
        assert len(result) == 10
        assert result.nm_values == sorted(result.nm_values, reverse=True)

    def test_omega_equals_kth_value(self, small_engine):
        result = TrajPatternMiner(small_engine, k=10, max_length=3).mine()
        assert result.omega <= result.nm_values[-1] + 1e-12

    def test_min_length_filters_output(self, small_engine):
        result = TrajPatternMiner(
            small_engine, k=5, min_length=2, max_length=4
        ).mine()
        assert all(len(p) >= 2 for p in result.patterns)

    def test_max_length_respected(self, small_engine):
        result = TrajPatternMiner(small_engine, k=10, max_length=2).mine()
        assert all(len(p) <= 2 for p in result.patterns)

    def test_groups_partition_topk(self, small_engine):
        result = TrajPatternMiner(small_engine, k=10, max_length=3).mine(
            discover_groups=True
        )
        assert result.groups is not None
        grouped = [p for g in result.groups for p in g.patterns]
        assert sorted(p.cells for p in grouped) == sorted(
            p.cells for p in result.patterns
        )

    def test_stats_populated(self, small_engine):
        result = TrajPatternMiner(small_engine, k=5, max_length=3).mine()
        stats = result.stats
        assert stats.iterations >= 1
        assert stats.candidates_evaluated > 0
        assert stats.final_q_size > 0
        assert stats.wall_time_s > 0

    def test_mean_length(self, small_engine):
        result = TrajPatternMiner(small_engine, k=5, max_length=3).mine()
        assert result.mean_length() == pytest.approx(
            sum(len(p) for p in result.patterns) / 5
        )

    def test_k_larger_than_alphabet(self, tiny_engine):
        n_active = len(tiny_engine.active_cells)
        result = TrajPatternMiner(tiny_engine, k=n_active * 3, max_length=2).mine()
        assert len(result) > 0  # returns what exists without crashing

    def test_single_trajectory_dataset(self, rng):
        traj = UncertainTrajectory(
            np.cumsum(rng.normal(0.05, 0.01, (10, 2)), axis=0), 0.05
        )
        dataset = TrajectoryDataset([traj])
        grid = dataset.make_grid(0.05)
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.05, min_prob=1e-4))
        result = TrajPatternMiner(engine, k=3, max_length=3).mine()
        assert len(result) == 3
