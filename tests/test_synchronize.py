"""Unit tests for repro.trajectory.synchronize."""

import numpy as np
import pytest

from repro.trajectory.synchronize import (
    InterpolationMode,
    LocationReport,
    _estimate_at,
    _estimate_many,
    synchronize_reports,
)


@pytest.fixture
def straight_reports():
    """Reports on the line y = 2x at x = t, every two time units."""
    return [LocationReport(t, float(t), 2.0 * t) for t in (0.0, 2.0, 4.0, 6.0)]


class TestValidation:
    def test_too_few_reports(self):
        with pytest.raises(ValueError, match="two reports"):
            synchronize_reports([LocationReport(0, 0, 0)], [0.0], sigma=0.1)

    def test_duplicate_times(self):
        reports = [LocationReport(0, 0, 0), LocationReport(0, 1, 1)]
        with pytest.raises(ValueError, match="strictly increasing"):
            synchronize_reports(reports, [0.0], sigma=0.1)

    def test_bad_sigma(self, straight_reports):
        with pytest.raises(ValueError, match="sigma"):
            synchronize_reports(straight_reports, [0.0, 1.0], sigma=0.0)

    def test_snapshots_before_first_report(self, straight_reports):
        with pytest.raises(ValueError, match="precede"):
            synchronize_reports(straight_reports, [-1.0, 0.0], sigma=0.1)

    def test_nonincreasing_snapshots(self, straight_reports):
        with pytest.raises(ValueError, match="strictly increasing"):
            synchronize_reports(straight_reports, [0.0, 0.0, 1.0], sigma=0.1)

    def test_linear_cannot_extrapolate(self, straight_reports):
        with pytest.raises(ValueError, match="extrapolate"):
            synchronize_reports(
                straight_reports, [5.0, 8.0], sigma=0.1, mode=InterpolationMode.LINEAR
            )


class TestDeadReckoning:
    def test_exact_on_linear_motion(self, straight_reports):
        traj = synchronize_reports(
            straight_reports, [1.0, 2.0, 3.0, 5.0], sigma=0.1
        )
        assert np.allclose(traj.means, [[1, 2], [2, 4], [3, 6], [5, 10]])

    def test_extrapolates_past_last_report(self, straight_reports):
        traj = synchronize_reports(straight_reports, [7.0, 8.0], sigma=0.1)
        assert np.allclose(traj.means, [[7, 14], [8, 16]])

    def test_unsorted_reports_accepted(self, straight_reports):
        shuffled = list(reversed(straight_reports))
        traj = synchronize_reports(shuffled, [1.0, 3.0], sigma=0.1)
        assert np.allclose(traj.means, [[1, 2], [3, 6]])

    def test_sigma_and_metadata(self, straight_reports):
        traj = synchronize_reports(
            straight_reports, [1.0, 2.0], sigma=0.25, object_id="bus"
        )
        assert traj.object_id == "bus"
        assert set(traj.sigmas) == {0.25}
        assert traj.start_time == 1.0
        assert traj.dt == 1.0

    def test_velocity_changes_between_reports(self):
        """Dead reckoning uses the most recent velocity only."""
        reports = [
            LocationReport(0.0, 0.0, 0.0),
            LocationReport(1.0, 1.0, 0.0),  # v = (1, 0)
            LocationReport(2.0, 1.0, 1.0),  # v = (0, 1)
        ]
        traj = synchronize_reports(reports, [2.5], sigma=0.1)
        assert np.allclose(traj.means, [[1.0, 1.5]])


class TestLinearInterpolation:
    def test_exact_midpoints(self, straight_reports):
        traj = synchronize_reports(
            straight_reports, [1.0, 3.0], sigma=0.1, mode=InterpolationMode.LINEAR
        )
        assert np.allclose(traj.means, [[1, 2], [3, 6]])

    def test_on_report_times(self, straight_reports):
        traj = synchronize_reports(
            straight_reports, [2.0, 6.0], sigma=0.1, mode=InterpolationMode.LINEAR
        )
        assert np.allclose(traj.means, [[2, 4], [6, 12]])

    def test_nonuniform_report_spacing(self):
        reports = [
            LocationReport(0.0, 0.0, 0.0),
            LocationReport(4.0, 4.0, 0.0),
            LocationReport(5.0, 4.0, 2.0),
        ]
        traj = synchronize_reports(
            reports, [2.0, 4.5], sigma=0.1, mode=InterpolationMode.LINEAR
        )
        assert np.allclose(traj.means, [[2.0, 0.0], [4.0, 1.0]])


class TestVectorisedMatchesScalarReference:
    """The searchsorted batch path equals the per-snapshot reference."""

    @pytest.mark.parametrize("mode", list(InterpolationMode))
    @pytest.mark.parametrize("seed", range(5))
    def test_random_reports_and_snapshots(self, mode, seed):
        rng = np.random.default_rng(seed)
        n_reports = int(rng.integers(2, 12))
        times = np.cumsum(rng.uniform(0.2, 3.0, n_reports))
        positions = rng.uniform(-5.0, 5.0, (n_reports, 2))
        t_max = times[-1] if mode is InterpolationMode.LINEAR else times[-1] + 5.0
        snap = np.sort(rng.uniform(times[0], t_max, 25))
        snap = snap[np.r_[True, np.diff(snap) > 0]]

        vectorised = _estimate_many(snap, times, positions, mode)
        reference = np.array(
            [_estimate_at(t, list(times), positions, mode) for t in snap]
        )
        np.testing.assert_allclose(vectorised, reference, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("mode", list(InterpolationMode))
    def test_snapshots_exactly_on_report_times(self, mode):
        times = np.array([0.0, 1.0, 3.0, 6.0])
        positions = np.array([[0.0, 0.0], [2.0, 1.0], [1.0, 4.0], [5.0, 5.0]])
        vectorised = _estimate_many(times, times, positions, mode)
        reference = np.array(
            [_estimate_at(t, list(times), positions, mode) for t in times]
        )
        np.testing.assert_allclose(vectorised, reference, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(vectorised, positions, rtol=1e-12, atol=1e-12)
