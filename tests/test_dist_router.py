"""PatternRouter: one address in front of N replicas, one generation.

No pytest-asyncio in the environment, so each test drives its own loop
with ``asyncio.run`` (same convention as ``test_serve_server.py``).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.dist.router import PatternRouter, RouterConfig, publish_snapshot
from repro.experiments.datasets import zebranet_dataset
from repro.serve import (
    PatternServer,
    ServeConfig,
    ServingSnapshot,
    SnapshotStore,
    protocol,
)
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture(scope="module")
def dataset():
    return zebranet_dataset(n_trajectories=12, n_ticks=20, seed=5)


@pytest.fixture(scope="module")
def snapshot(dataset):
    return ServingSnapshot.from_dataset(dataset, version="v-base")


class _Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host, port):
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        self.writer.write(protocol.encode(payload))
        await self.writer.drain()
        return protocol.decode_line(await self.reader.readline())

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


class _Tier:
    """Two replicas + a router + one client, torn down in order."""

    def __init__(self, snapshot, stats_interval_s=0.2):
        self.snapshot = snapshot
        self.stats_interval_s = stats_interval_s

    async def __aenter__(self):
        self.servers = [
            PatternServer(SnapshotStore(self.snapshot), ServeConfig())
            for _ in range(2)
        ]
        self.addresses = [await s.start() for s in self.servers]
        self.router = PatternRouter(
            RouterConfig(
                replicas=tuple(self.addresses),
                stats_interval_s=self.stats_interval_s,
            )
        )
        host, port = await self.router.start()
        self.client = await _Client.connect(host, port)
        return self

    async def __aexit__(self, *exc_info):
        await self.client.close()
        await self.router.stop()
        for server in self.servers:
            await server.stop()


def test_hello_and_forwarded_ops(snapshot):
    cells = snapshot.engine.active_cells
    bbox = snapshot.grid.bbox
    mid = [(bbox.min_x + bbox.max_x) / 2, (bbox.min_y + bbox.max_y) / 2]

    async def scenario():
        async with _Tier(snapshot) as tier:
            c = tier.client
            resp = await c.request({"op": "hello", "id": 1})
            assert resp["ok"] and resp["router"] is True
            assert resp["replicas"] == [True, True]
            assert resp["version"] == protocol.PROTOCOL_VERSION

            resp = await c.request(
                {"op": "score", "id": 2, "patterns": [[cells[0]], [cells[1]]]}
            )
            assert resp["ok"] and resp["id"] == 2 and len(resp["values"]) == 2

            resp = await c.request(
                {"op": "predict", "id": 3, "recent": [mid, mid], "sigma": 1.0}
            )
            assert resp["ok"]
            assert (await c.request({"op": "health", "id": 4}))["ok"]
            assert (await c.request({"op": "describe", "id": 5}))["ok"]

    asyncio.run(scenario())


def test_sequential_requests_spread_across_replicas(snapshot):
    cells = snapshot.engine.active_cells

    async def scenario():
        async with _Tier(snapshot) as tier:
            for i in range(20):
                resp = await tier.client.request(
                    {"op": "score", "id": i, "patterns": [[cells[0]]]}
                )
                assert resp["ok"]
            stats = await tier.client.request({"op": "stats", "id": 99})
            router = stats["stats"]["router"]
            forwarded = [
                router["replicas"][name]["forwarded"]
                for name in sorted(router["replicas"])
            ]
            # Round-robin tie-break: a zero-concurrency client still uses
            # both replicas instead of pinning the first.
            assert sum(forwarded) >= 20
            assert all(count >= 8 for count in forwarded), forwarded
            assert router["replicas_up"] == 2
            assert stats["stats"]["requests_served"] >= 20

    asyncio.run(scenario())


def test_swap_broadcast_lands_one_generation_on_all_replicas(
    snapshot, dataset, tmp_path
):
    src = tmp_path / "snap"
    src.mkdir()
    save_dataset_jsonl(dataset, str(src / "dataset.jsonl"))
    (src / "serve.json").write_text(json.dumps({"version": "v2"}))
    dest = publish_snapshot(src, tmp_path / "generations", "7")
    assert dest.name == "gen-7"
    staged = json.loads((dest / "serve.json").read_text())
    assert staged["version"] == "v2+gen-7"

    async def scenario():
        async with _Tier(snapshot) as tier:
            resp = await tier.client.request(
                {"op": "swap", "id": 1, "path": str(dest)}
            )
            assert resp["ok"], resp
            assert resp["version"] == "v2+gen-7"
            assert set(resp["replicas"].values()) == {"v2+gen-7"}

    asyncio.run(scenario())


def test_publish_snapshot_refuses_duplicate_generation(dataset, tmp_path):
    src = tmp_path / "snap"
    src.mkdir()
    save_dataset_jsonl(dataset, str(src / "dataset.jsonl"))
    publish_snapshot(src, tmp_path / "generations", "1")
    with pytest.raises(FileExistsError):
        publish_snapshot(src, tmp_path / "generations", "1")


def test_shutdown_refused_and_version_checked(snapshot):
    async def scenario():
        async with _Tier(snapshot) as tier:
            resp = await tier.client.request({"op": "shutdown", "id": 1})
            assert not resp["ok"] and resp["error"] == "forbidden"
            resp = await tier.client.request(
                {"op": "score", "id": 2, "v": 99, "patterns": [[0]]}
            )
            assert not resp["ok"] and resp["error"] == "bad_request"
            assert resp["server_version"] == protocol.PROTOCOL_VERSION
            assert resp["client_version"] == 99

    asyncio.run(scenario())


def test_replica_death_fails_over_and_reconnects(snapshot):
    cells = snapshot.engine.active_cells

    async def scenario():
        async with _Tier(snapshot) as tier:
            c = tier.client
            host, port = tier.addresses[0]
            await tier.servers[0].stop()
            await asyncio.sleep(0.1)
            # Tier keeps serving on the survivor.
            resp = await c.request({"op": "score", "id": 1, "patterns": [[cells[0]]]})
            assert resp["ok"], resp
            stats = await c.request({"op": "stats", "id": 2})
            assert stats["stats"]["router"]["replicas_up"] == 1

            # Replica returns on the same address; reconnect loop finds it.
            revived = PatternServer(
                SnapshotStore(snapshot), ServeConfig(host=host, port=port)
            )
            await revived.start()
            tier.servers[0] = revived
            for _ in range(50):
                await asyncio.sleep(0.2)
                stats = await c.request({"op": "stats", "id": 3})
                if stats["stats"]["router"]["replicas_up"] == 2:
                    break
            router = stats["stats"]["router"]
            assert router["replicas_up"] == 2
            assert any(
                replica["reconnects"] >= 1
                for replica in router["replicas"].values()
            )

    asyncio.run(scenario())


def test_router_requires_replicas():
    with pytest.raises(ValueError):
        RouterConfig()
