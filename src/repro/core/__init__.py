"""The paper's primary contribution: the trajectory-pattern model and miner.

* :class:`~repro.core.pattern.TrajectoryPattern` -- an ordered list of grid
  positions, optionally with wildcard ("don't care") positions (section 5).
* :mod:`~repro.core.measures` -- the match / normalised-match measures of
  section 3.3 (scalar reference implementation) and the min-max property.
* :class:`~repro.core.engine.NMEngine` -- the vectorised dataset-wide
  evaluator built on a sparse per-cell log-probability index.
* :class:`~repro.core.trajpattern.TrajPatternMiner` -- the TrajPattern
  algorithm of section 4 (top-k NM mining with 1-extension pruning), plus
  the minimum-length variant of section 5.
* :mod:`~repro.core.groups` -- pattern-group discovery (sections 3.4, 4.2).
"""

from repro.core.engine import (
    EngineConfig,
    ExtensionTables,
    NMEngine,
    StaleIndexError,
    build_engine,
)
from repro.core.groups import PatternGroup, discover_pattern_groups
from repro.core.incremental import IncrementalIndexer
from repro.core.index_cache import cache_key, load_index, save_index
from repro.core.measures import (
    match_pattern_trajectory,
    match_pattern_window,
    minmax_upper_bound,
    nm_pattern_dataset,
    nm_pattern_trajectory,
    nm_pattern_window,
)
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.trajpattern import MiningResult, TrajPatternMiner, WarmStartState
from repro.core.parameters import SuggestedParameters, suggest_parameters
from repro.core.results_io import load_mining_result, save_mining_result
from repro.core.parallel import ParallelNMEngine, shard_dataset
from repro.core.wildcards import Gap, GapPattern, nm_gap_pattern

__all__ = [
    "TrajectoryPattern",
    "WILDCARD",
    "NMEngine",
    "ParallelNMEngine",
    "shard_dataset",
    "build_engine",
    "EngineConfig",
    "ExtensionTables",
    "cache_key",
    "load_index",
    "save_index",
    "TrajPatternMiner",
    "MiningResult",
    "WarmStartState",
    "IncrementalIndexer",
    "StaleIndexError",
    "PatternGroup",
    "discover_pattern_groups",
    "Gap",
    "GapPattern",
    "nm_gap_pattern",
    "SuggestedParameters",
    "suggest_parameters",
    "save_mining_result",
    "load_mining_result",
    "match_pattern_window",
    "match_pattern_trajectory",
    "nm_pattern_window",
    "nm_pattern_trajectory",
    "nm_pattern_dataset",
    "minmax_upper_bound",
]
