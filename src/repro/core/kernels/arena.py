"""Preallocated scratch buffers for the engine's steady-state hot loops.

Every ``nm_batch`` round needs a handful of working arrays whose shapes
depend only on the batch geometry (windows, patterns, trajectories).
Allocating them per call is cheap individually but adds up on the serve
eval thread, where thousands of small batches per second turn the
allocator into measurable overhead and GC pressure.  A
:class:`ScratchArena` keeps one named, geometrically grown buffer per
role; once the engine has seen its largest batch shape, subsequent calls
are allocation-free.

Buffers are plain numpy arrays handed out as reshaped views, so a view
returned by :meth:`ScratchArena.get` is only valid until the next ``get``
of the same name -- callers that let a result escape must copy it.  The
arena is deliberately not thread-safe: each :class:`~repro.core.engine.NMEngine`
owns one, and an engine is single-threaded by contract (the serve layer
funnels all evaluation through one eval thread; parallel workers each
build their own engine).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ScratchArena"]


class ScratchArena:
    """Named, growable, zero-initialised scratch buffers (see module docs)."""

    __slots__ = ("_buffers", "allocations", "requests")

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}
        #: Buffers allocated so far -- stable across calls once warmed up,
        #: which is what the allocation-free steady-state tests assert.
        self.allocations = 0
        #: Total ``get`` calls (instrumentation only).
        self.requests = 0

    def get(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        *,
        zero: bool = False,
    ) -> np.ndarray:
        """A contiguous view of ``shape``/``dtype`` backed by buffer ``name``.

        Fresh allocations are zero-filled; ``zero=True`` additionally
        clears the returned view on every call (for buffers whose contract
        is "all zeros on entry" and whose kernel does not restore them).
        Growth is geometric (1.5x) so a slowly increasing batch size does
        not reallocate per call.
        """
        self.requests += 1
        dtype = np.dtype(dtype)
        n = int(math.prod(shape))
        key = (name, dtype.str)
        buf = self._buffers.get(key)
        if buf is None or buf.size < n:
            grown = 0 if buf is None else int(buf.size * 1.5)
            buf = np.zeros(max(n, grown), dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
            view = buf[:n].reshape(shape)
            return view  # freshly zeroed by construction
        view = buf[:n].reshape(shape)
        if zero:
            view.fill(0)
        return view

    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())
