"""Tests for fleet-level tracking."""

import numpy as np
import pytest

from repro.mobility.models import KalmanModel, LinearModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import FleetTracker, TrackingServer, track_fleet


@pytest.fixture
def paths(rng):
    out = []
    for i in range(5):
        start = rng.uniform(0, 1, 2)
        heading = rng.uniform(0, 2 * np.pi)
        steps = 0.02 * np.column_stack(
            [np.cos(heading + 0.1 * np.arange(15)), np.sin(heading + 0.1 * np.arange(15))]
        )
        out.append(
            GroundTruthPath(
                start + np.cumsum(steps, axis=0), object_id=f"p{i}", label="fleet"
            )
        )
    return out


CONFIG = ReportingConfig(uncertainty=0.02, confidence_c=2.0)


class TestTrackFleet:
    def test_one_log_per_path(self, paths):
        result = track_fleet(paths, LinearModel, CONFIG)
        assert len(result.logs) == len(paths)
        assert result.logs[0].object_id == "p0"
        assert result.logs[0].label == "fleet"

    def test_total_mispredictions(self, paths):
        result = track_fleet(paths, LinearModel, CONFIG)
        assert result.total_mispredictions == sum(
            log.n_mispredictions for log in result.logs
        )

    def test_misprediction_rate_bounds(self, paths):
        result = track_fleet(paths, LinearModel, CONFIG)
        assert 0.0 <= result.misprediction_rate() <= 1.0

    def test_to_dataset(self, paths):
        result = track_fleet(paths, LinearModel, CONFIG)
        dataset = result.to_dataset()
        assert len(dataset) == len(paths)
        assert dataset.metadata["sigma"] == CONFIG.sigma
        assert all(len(t) == len(p) for t, p in zip(dataset, paths))

    def test_fresh_model_per_object(self, paths):
        """Tracking must not leak state across objects: tracking objects
        one by one gives the same logs as tracking the fleet."""
        fleet = track_fleet(paths, KalmanModel, CONFIG)
        for path, log in zip(paths, fleet.logs):
            solo = track_fleet([path], KalmanModel, CONFIG)
            assert np.allclose(solo.logs[0].estimates, log.estimates)

    def test_empty_fleet(self):
        result = track_fleet([], LinearModel, CONFIG)
        assert result.total_mispredictions == 0
        assert result.misprediction_rate() == 0.0

    def test_tracker_class_equivalent(self, paths):
        a = FleetTracker(LinearModel, CONFIG).track(paths)
        b = track_fleet(paths, LinearModel, CONFIG)
        assert a.total_mispredictions == b.total_mispredictions

    def test_deprecated_alias(self):
        # The old name stays importable and is the same class.
        assert TrackingServer is FleetTracker
