"""Tests for the support-measure baseline and its noise brittleness."""

import numpy as np
import pytest

from repro.baselines.support import SupportMiner, discretize
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def corridor_dataset(n, jitter, seed=0, sigma=0.05):
    """Trajectories marching left-to-right along the middle row."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for _ in range(n):
        xs = 0.1 + 0.2 * np.arange(5) + rng.normal(0, jitter, 5)
        ys = np.full(5, 0.5) + rng.normal(0, jitter, 5)
        trajectories.append(UncertainTrajectory(np.column_stack([xs, ys]), sigma))
    return TrajectoryDataset(trajectories)


GRID = Grid(BoundingBox.unit(), nx=5, ny=5)


class TestDiscretize:
    def test_most_likely_cells(self):
        ds = corridor_dataset(1, jitter=0.0)
        seqs = discretize(ds, GRID)
        assert seqs == [(10, 11, 12, 13, 14)]


class TestValidation:
    def test_bad_parameters(self):
        ds = corridor_dataset(2, 0.0)
        with pytest.raises(ValueError):
            SupportMiner(ds, GRID, k=0)
        with pytest.raises(ValueError):
            SupportMiner(ds, GRID, k=1, min_length=0)
        with pytest.raises(ValueError):
            SupportMiner(ds, GRID, k=1, min_length=3, max_length=2)


class TestMining:
    def test_counts_exact_on_clean_data(self):
        ds = corridor_dataset(6, jitter=0.0)
        result = SupportMiner(ds, GRID, k=3, min_length=2, max_length=3).mine()
        # Every trajectory contains every corridor bigram/trigram.
        assert result.supports[0] == 6
        assert all(s == 6 for s in result.supports)

    def test_support_counts_each_trajectory_once(self):
        # A trajectory with a repeated bigram still counts once.
        t = UncertainTrajectory(
            GRID.cell_centers([10, 11, 10, 11]).copy(), 0.05
        )
        ds = TrajectoryDataset([t])
        result = SupportMiner(ds, GRID, k=1, min_length=2).mine()
        assert result.supports[0] == 1

    def test_min_length_filter(self):
        ds = corridor_dataset(4, jitter=0.0)
        result = SupportMiner(ds, GRID, k=5, min_length=3, max_length=4).mine()
        assert all(len(p) >= 3 for p in result.patterns)

    def test_deterministic(self):
        ds = corridor_dataset(5, jitter=0.02, seed=3)
        a = SupportMiner(ds, GRID, k=5, min_length=2).mine()
        b = SupportMiner(ds, GRID, k=5, min_length=2).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]

    def test_stats(self):
        ds = corridor_dataset(4, jitter=0.0)
        result = SupportMiner(ds, GRID, k=3, min_length=2).mine()
        assert result.stats.levels >= 2
        assert result.stats.ngrams_counted > 0


class TestNoiseBrittleness:
    """Section 3.3's motivation: support collapses under imprecision, NM
    keeps finding the corridor."""

    def test_support_degrades_with_noise(self):
        clean = SupportMiner(
            corridor_dataset(10, jitter=0.0), GRID, k=1, min_length=3
        ).mine()
        noisy = SupportMiner(
            corridor_dataset(10, jitter=0.08, seed=5), GRID, k=1, min_length=3
        ).mine()
        assert clean.supports[0] == 10
        assert noisy.supports[0] < clean.supports[0]

    def test_nm_still_finds_corridor_under_noise(self):
        ds = corridor_dataset(10, jitter=0.08, seed=5, sigma=0.1)
        engine = NMEngine(ds, GRID, EngineConfig(delta=0.2, min_prob=1e-5))
        result = TrajPatternMiner(engine, k=1, min_length=3, max_length=3).mine()
        # The corridor row is y = 0.5 -> cells 10..14; the top NM trigram
        # should still be a contiguous corridor segment.
        corridor_trigrams = {
            (10 + i, 11 + i, 12 + i) for i in range(3)
        }
        assert result.patterns[0].cells in corridor_trigrams
