"""Correctness tooling: the differential oracle and fault injection.

``repro.testkit`` is the standing regression net for the scaling layers:

* :mod:`repro.testkit.faults` -- a registry of named injection points
  threaded through ``core/parallel``, ``core/index_cache`` and ``serve``
  so tests can crash workers, tear cache writes and drop connections on
  purpose;
* :mod:`repro.testkit.oracle` -- the differential oracle that evaluates
  one candidate frontier through every execution path (scalar reference,
  batched engine, parallel shards, cold/warm cache, streaming chunks,
  live server round-trip) and pins their agreement in ULPs;
* :mod:`repro.testkit.datasets` -- the seeded datasets the oracle (and
  ``repro selfcheck``) runs over.

``faults`` is imported eagerly because production modules call its
:func:`~repro.testkit.faults.fire` on hot paths and it has no
dependencies of its own.  ``oracle``/``datasets`` load lazily (PEP 562):
they import the serve stack, which imports the core modules, which
import ``faults`` -- eager loading here would be a cycle.
"""

from __future__ import annotations

import importlib

from repro.testkit import faults

__all__ = ["faults", "oracle", "datasets"]

_LAZY = ("oracle", "datasets")


def __getattr__(name: str):
    if name in _LAZY:
        module = importlib.import_module(f"repro.testkit.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
