"""Unit tests for repro.trajectory.dataset."""

import numpy as np
import pytest

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def make(n_snapshots, sigma=0.1, offset=0.0, object_id=""):
    means = np.column_stack(
        [np.arange(n_snapshots) * 0.1 + offset, np.zeros(n_snapshots)]
    )
    return UncertainTrajectory(means, sigma, object_id=object_id)


@pytest.fixture
def dataset():
    return TrajectoryDataset(
        [make(5, 0.1, 0.0, "a"), make(7, 0.2, 1.0, "b"), make(3, 0.05, 2.0, "c")],
        metadata={"kind": "location"},
    )


class TestBasics:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 3
        assert dataset[1].object_id == "b"
        assert [t.object_id for t in dataset] == ["a", "b", "c"]

    def test_total_snapshots_and_mean_length(self, dataset):
        assert dataset.total_snapshots() == 15
        assert dataset.mean_length() == pytest.approx(5.0)

    def test_empty_dataset_stats(self):
        empty = TrajectoryDataset([])
        assert empty.mean_length() == 0.0
        assert empty.total_snapshots() == 0
        with pytest.raises(ValueError):
            empty.bounding_box()
        with pytest.raises(ValueError):
            empty.max_sigma()

    def test_all_means_stacked(self, dataset):
        assert dataset.all_means().shape == (15, 2)

    def test_max_sigma(self, dataset):
        assert dataset.max_sigma() == pytest.approx(0.2)


class TestGeometry:
    def test_bounding_box(self, dataset):
        box = dataset.bounding_box()
        assert box.min_x == pytest.approx(0.0)
        assert box.max_x == pytest.approx(2.2)

    def test_bounding_box_sigma_padding(self, dataset):
        padded = dataset.bounding_box(n_sigmas=2.0)
        assert padded.min_x == pytest.approx(-0.4)

    def test_make_grid_covers_sigma_margin(self, dataset):
        grid = dataset.make_grid(0.1)
        box = dataset.bounding_box(n_sigmas=4.0)
        assert grid.bbox.min_x <= box.min_x
        assert grid.bbox.max_x >= box.max_x


class TestFunctional:
    def test_filter(self, dataset):
        longer = dataset.filter(lambda t: len(t) >= 5)
        assert [t.object_id for t in longer] == ["a", "b"]
        assert longer.metadata == dataset.metadata

    def test_split(self, dataset):
        head, tail = dataset.split(2)
        assert [t.object_id for t in head] == ["a", "b"]
        assert [t.object_id for t in tail] == ["c"]

    def test_split_bounds(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(4)

    def test_subset(self, dataset):
        sub = dataset.subset([2, 0])
        assert [t.object_id for t in sub] == ["c", "a"]

    def test_shuffled_is_permutation(self, dataset):
        shuffled = dataset.shuffled(np.random.default_rng(0))
        assert sorted(t.object_id for t in shuffled) == ["a", "b", "c"]
