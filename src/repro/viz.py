"""Terminal visualisation of trajectories, patterns and grids.

Plotting libraries are deliberately out of the dependency set; these
ASCII renderers cover what the examples and debugging sessions need:

* :func:`render_grid` -- a character canvas of the grid with trajectories
  and/or patterns drawn onto it;
* :func:`render_pattern` -- one pattern as an arrow-joined list of cell
  centres;
* :func:`render_misprediction_bars` -- the Fig. 3 bar chart as text.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.trajectory import UncertainTrajectory

#: Glyphs used by :func:`render_grid`, in increasing precedence.
EMPTY, TRAJECTORY_GLYPH, PATTERN_GLYPH, OVERLAP_GLYPH = ".", "o", "#", "@"


def render_grid(
    grid: Grid,
    trajectories: Sequence[UncertainTrajectory] = (),
    patterns: Sequence[TrajectoryPattern] = (),
    width: int = 60,
) -> str:
    """Character canvas of the grid extent with data drawn onto it.

    Trajectory snapshot means render as ``o``, pattern cells as ``#``, and
    cells containing both as ``@``.  The canvas is resampled to at most
    ``width`` columns (rows follow the aspect ratio).
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    cols = min(width, grid.nx)
    rows = max(1, int(round(cols * grid.bbox.height / max(grid.bbox.width, 1e-12) / 2)))
    canvas = np.full((rows, cols), EMPTY, dtype="<U1")

    def plot(x: float, y: float, glyph: str) -> None:
        c = int((x - grid.bbox.min_x) / grid.bbox.width * cols)
        r = int((y - grid.bbox.min_y) / grid.bbox.height * rows)
        c = min(max(c, 0), cols - 1)
        r = min(max(r, 0), rows - 1)
        current = canvas[rows - 1 - r, c]  # y grows upward
        if current != EMPTY and current != glyph:
            glyph = OVERLAP_GLYPH
        canvas[rows - 1 - r, c] = glyph

    for trajectory in trajectories:
        for x, y in trajectory.means:
            plot(float(x), float(y), TRAJECTORY_GLYPH)
    for pattern in patterns:
        for cell in pattern.cells:
            if cell == WILDCARD:
                continue
            center = grid.cell_center(cell)
            plot(center.x, center.y, PATTERN_GLYPH)

    border = "+" + "-" * cols + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in canvas)
    return f"{border}\n{body}\n{border}"


def render_pattern(pattern: TrajectoryPattern, grid: Grid, precision: int = 3) -> str:
    """One pattern as ``(x,y) -> (x,y) -> *`` text."""
    parts = []
    for cell in pattern.cells:
        if cell == WILDCARD:
            parts.append("*")
        else:
            center = grid.cell_center(cell)
            parts.append(f"({center.x:.{precision}f},{center.y:.{precision}f})")
    return " -> ".join(parts)


def render_misprediction_bars(
    rows: Iterable[tuple[str, float]], width: int = 40
) -> str:
    """Horizontal text bars for (label, reduction-ratio) rows (Fig. 3 style).

    Negative reductions render as ``<`` bars so regressions stay visible.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    scale = max(abs(value) for _, value in rows) or 1.0
    lines = []
    label_width = max(len(label) for label, _ in rows)
    for label, value in rows:
        n = int(round(abs(value) / scale * width))
        bar = (">" if value >= 0 else "<") * n
        lines.append(f"{label:<{label_width}} {value:+7.1%} {bar}")
    return "\n".join(lines)
