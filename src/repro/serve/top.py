"""``repro top``: a live terminal dashboard for a running PatternServer.

Two data sources, one frame renderer:

* **live mode** (default): poll the server's ``stats`` op over a plain
  blocking socket every ``interval_s`` -- no dependency on the serving
  event loop, works against any reachable server;
* **series mode** (``--series``): tail the telemetry JSONL written by
  :class:`~repro.obs.export.TelemetryExporter` -- works after the fact,
  or against a server whose port is not reachable from here.

Each frame shows QPS, per-op rolling-window and all-time latency
quantiles, queue depth, batch shape, shed reasons, snapshot generation
and peak RSS.  ``once=True`` prints a single frame without clearing the
screen -- the scriptable/CI mode asserted by the telemetry smoke job.

Everything here is stdlib-only and synchronous on purpose: a dashboard
must not require the server's own machinery to be healthy.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from dataclasses import dataclass
from pathlib import Path

#: ANSI: clear screen + home, for the refreshing display.
_CLEAR = "\x1b[2J\x1b[H"

#: Backoff schedule when the stats source is unreachable in loop mode:
#: doubling from the base, capped -- mirrors the router's reconnect pacing.
_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 5.0


@dataclass
class TopConfig:
    """Where to look and how often."""

    host: str = "127.0.0.1"
    port: int = 0
    interval_s: float = 2.0
    once: bool = False
    series: str | None = None  # telemetry.jsonl path -> series mode
    timeout_s: float = 5.0
    max_frames: int | None = None  # stop after N frames (tests)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


def fetch_stats(host: str, port: int, timeout_s: float = 5.0) -> dict:
    """One blocking ``stats`` round-trip; raises ``OSError`` on failure."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(b'{"op":"stats"}\n')
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection mid-response")
            buf += chunk
    response = json.loads(buf)
    if not response.get("ok"):
        raise RuntimeError(f"stats failed: {response}")
    return response["stats"]


def _fmt_bytes(n: float | None) -> str:
    if not n:
        return "-"
    return f"{n / 2**20:.1f}MiB"


def _fmt_ms(value: float | None) -> str:
    return f"{value:.2f}ms" if value is not None else "-"


def _latency_rows(latency: dict) -> list[str]:
    if not latency:
        return ["  (enable server metrics for latency quantiles)"]
    lines = [
        "  op       win p50    win p95    win p99   win qps    all p99      count"
    ]
    for op, entry in sorted(latency.items()):
        window = entry.get("window") or {}
        wq = window.get("quantiles_ms") or {}
        aq = entry.get("all_time_ms") or {}
        lines.append(
            f"  {op:<8}"
            f" {_fmt_ms(wq.get('p50')):>9}"
            f" {_fmt_ms(wq.get('p95')):>10}"
            f" {_fmt_ms(wq.get('p99')):>10}"
            f" {window.get('rate_per_s', 0.0):>8.1f}/s"
            f" {_fmt_ms(aq.get('p99')):>10}"
            f" {entry.get('count', 0):>10}"
        )
        exemplars = window.get("exemplars") or []
        if exemplars:
            lines.append(f"           tail traces: {', '.join(exemplars[:3])}")
    return lines


def render_stats_frame(
    stats: dict, prev: dict | None, dt_s: float | None, reconnects: int = 0
) -> str:
    """One dashboard frame from a ``stats`` op response.

    ``reconnects`` is the dashboard's own count of polls it lost and
    recovered from -- shown so a flapping server is visible even when
    its stats look healthy between the gaps.
    """
    uptime = stats.get("uptime_s", 0.0)
    served = stats.get("requests_served", 0)
    if prev is not None and dt_s and dt_s > 0:
        qps = (served - prev.get("requests_served", 0)) / dt_s
        qps_label = f"{qps:.1f}/s"
    elif uptime > 0:
        qps_label = f"{served / uptime:.1f}/s avg"
    else:
        qps_label = "-"
    batcher = stats.get("batcher", {})
    shed = batcher.get("shed", {})
    closed = batcher.get("closed_on", {})
    lines = [
        f"repro top — snapshot {stats.get('version', '?')}"
        f" (swaps: {stats.get('swaps', 0)})"
        f"  uptime {uptime:.0f}s  rss {_fmt_bytes(stats.get('rss_peak_bytes'))}",
        f"  requests {served}  qps {qps_label}"
        f"  queue depth {stats.get('queue_depth', 0)}"
        + (f"  reconnects {reconnects}" if reconnects else ""),
        f"  batches {batcher.get('batches', 0)}"
        f"  mean size {batcher.get('mean_batch_size', 0.0):.1f}"
        f"  max size {batcher.get('max_batch_size', 0)}"
        f"  ema {batcher.get('ema_batch_s', 0.0) * 1e3:.2f}ms"
        f"  closed size/delay/boundary"
        f" {closed.get('size', 0)}/{closed.get('delay', 0)}/{closed.get('boundary', 0)}",
        f"  shed queue_full {shed.get('queue_full', 0)}"
        f"  deadline {shed.get('deadline', 0)}"
        f"  expired {shed.get('deadline_expired', 0)}",
        "latency (60s window / all-time):",
    ]
    lines.extend(_latency_rows(stats.get("latency", {})))
    return "\n".join(lines)


def render_series_frame(record: dict, prev: dict | None) -> str:
    """One dashboard frame from the newest telemetry series record."""
    counters = record.get("counters", {})
    gauges = record.get("gauges", {})
    histograms = record.get("histograms", {})
    request_rate = sum(
        data.get("rate_per_s", 0.0)
        for name, data in counters.items()
        if name.startswith("serve.") and name.endswith(".requests")
    )
    shed_bits = []
    for reason in ("queue_full", "deadline", "deadline_expired"):
        data = counters.get(f"serve.shed.{reason}", {})
        shed_bits.append(f"{reason} {data.get('value', 0)}")
    lines = [
        f"repro top — telemetry series seq {record.get('seq')}"
        f"  interval {record.get('interval_s', 0.0):.1f}s",
        f"  request rate {request_rate:.1f}/s"
        f"  queue depth {gauges.get('serve.queue_depth', 0):.0f}",
        f"  shed: {'  '.join(shed_bits)}",
        "latency (60s window, ns histograms):",
    ]
    rows = False
    for name, hist in sorted(histograms.items()):
        if not name.endswith(".latency_ns"):
            continue
        window = hist.get("window") or {}
        quantiles = window.get("quantiles") or {}
        if not quantiles:
            continue
        rows = True
        op = name[len("serve.") : -len(".latency_ns")]
        lines.append(
            f"  {op:<8}"
            f" p50 {_fmt_ms(quantiles.get('p50', 0.0) / 1e6):>9}"
            f" p95 {_fmt_ms(quantiles.get('p95', 0.0) / 1e6):>9}"
            f" p99 {_fmt_ms(quantiles.get('p99', 0.0) / 1e6):>9}"
            f" count {window.get('count', 0):>8}"
        )
    if not rows:
        lines.append("  (no latency histograms in this record)")
    return "\n".join(lines)


def _last_series_record(path: Path) -> dict | None:
    """Newest record of a telemetry series file (cheap tail, no full load)."""
    try:
        with path.open("rb") as fh:
            lines = fh.readlines()
    except OSError:
        return None
    for raw in reversed(lines):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except ValueError:
            continue
        if record.get("kind") == "telemetry":
            return record
    return None


def run_top(config: TopConfig, out=None) -> int:
    """Run the dashboard loop; returns a process exit code.

    ``once`` prints a single frame (no screen clearing) and exits
    non-zero if the source is unreachable -- that is the CI contract.
    In loop mode a lost server keeps the dashboard alive and retrying.
    """
    out = out if out is not None else sys.stdout
    prev: dict | None = None
    prev_t: float | None = None
    frames = 0
    reconnects = 0
    backoff: float | None = None  # None = healthy, poll at interval_s
    while True:
        frame: str | None = None
        error: str | None = None
        if config.series is not None:
            record = _last_series_record(Path(config.series))
            if record is None:
                error = f"no telemetry records in {config.series}"
            else:
                frame = render_series_frame(record, prev)
                prev = record
        else:
            try:
                stats = fetch_stats(config.host, config.port, config.timeout_s)
            except (OSError, RuntimeError, ValueError) as exc:
                error = f"cannot fetch stats from {config.host}:{config.port}: {exc}"
            else:
                now = time.monotonic()
                dt = now - prev_t if prev_t is not None else None
                if backoff is not None:
                    reconnects += 1  # recovered from a lost server
                    backoff = None
                frame = render_stats_frame(stats, prev, dt, reconnects)
                prev = stats
                prev_t = now
        if frame is None:
            if config.once:
                print(f"repro top: {error}", file=out)
                return 1
            # Lost the source: keep the dashboard alive, back off the
            # polling exponentially (capped) instead of hammering a
            # server that is mid-restart.
            backoff = (
                _BACKOFF_BASE_S if backoff is None
                else min(backoff * 2, _BACKOFF_CAP_S)
            )
            frame = (
                f"repro top: {error}"
                f" (retrying in {backoff:.2f}s, reconnects {reconnects})"
            )
        if config.once:
            print(frame, file=out)
            return 0
        print(_CLEAR + frame, file=out, flush=True)
        frames += 1
        if config.max_frames is not None and frames >= config.max_frames:
            return 0
        try:
            time.sleep(config.interval_s if backoff is None else backoff)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
