"""The projection-based (PB) baseline for NM mining (paper section 6.2).

The paper adapts the projection-based approach of InfoMiner [13] to mine
the same top-k NM patterns and uses it as the comparison baseline of the
scalability study.  Section 6.2 describes exactly how it behaves:

    "a large set of prefixes need to be maintained.  At each unspecified
    position, the maximum match of a position p is used as the up-bound of
    the possible match.  However, this bound could be very loose.  As a
    result, it could be true that every prefix up to length c could be
    extensible [...] we need to keep G^c prefixes."

This module implements that adaptation: a breadth-first prefix search where
a prefix ``P`` of length ``i`` survives when its optimistic NM bound --
filling every unspecified position with the best singular NM ``s*`` --
still reaches the running top-k threshold ``omega``:

    ``ub(P) = max over n in (i, M] of (i NM(P) + (n - i) s*) / n``

(``M`` is the maximum pattern length searched; by monotonicity the maximum
sits at ``n = M`` when ``s* >= NM(P)`` and at ``n = i + 1`` otherwise).
Because ``s*`` upper-bounds the NM of *every* pattern (by the min-max
property), this bound rarely prunes and the prefix set grows roughly like
``G^c`` -- the exponential behaviour Fig. 4 reports.  The search is exact
within ``max_length``: no prefix whose extension could still qualify is
ever dropped.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.engine import NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import MiningResult, MinerStats

Cells = tuple[int, ...]


@dataclass
class PBStats:
    """Instrumentation of a PB run (prefix growth is the story here)."""

    levels: int = 0
    prefixes_evaluated: int = 0
    prefix_set_sizes: list[int] = field(default_factory=list)
    truncated: bool = False
    wall_time_s: float = 0.0


class PBMiner:
    """Projection-based top-k NM miner (the Fig. 4 baseline).

    Parameters
    ----------
    engine:
        Evaluation engine over the target dataset.
    k:
        Number of patterns to mine.
    max_length:
        Maximum pattern length searched.  PB *needs* this cap: its bound
        cannot by itself conclude that longer patterns stop qualifying.
    min_length:
        Only patterns at least this long qualify for the top-k.
    max_prefixes:
        Safety valve against the algorithm's own exponential growth: when a
        level exceeds this many prefixes, the level is truncated to the
        best-bounded ones and the run is flagged ``truncated`` (benchmarks
        keep parameters below this; the flag guards interpretation).
    """

    def __init__(
        self,
        engine: NMEngine,
        k: int,
        max_length: int = 4,
        min_length: int = 1,
        max_prefixes: int = 500_000,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        if max_prefixes <= 0:
            raise ValueError("max_prefixes must be positive")
        self.engine = engine
        self.k = k
        self.max_length = max_length
        self.min_length = min_length
        self.max_prefixes = max_prefixes

    #: Frontier prefixes whose extension tables share one batched engine pass.
    FRONTIER_BATCH = 64

    def mine(self) -> tuple[MiningResult, PBStats]:
        """Run the prefix search; returns (result, PB-specific stats).

        The result reuses :class:`~repro.core.trajpattern.MiningResult` so
        the experiment harness can treat both miners uniformly.
        """
        stats = PBStats()
        t0 = time.perf_counter()

        singulars = sorted(self.engine.singular_nm_table().items())
        alphabet = [c for c, _ in singulars]
        scores: dict[Cells, float] = {(c,): nm for c, nm in singulars}
        stats.prefixes_evaluated += len(scores)
        s_star = max(scores.values())

        omega = self._threshold(scores)
        prefixes = [
            c for c, nm in scores.items()
            if self._upper_bound(nm, 1, s_star) >= omega
        ]
        stats.levels = 1
        stats.prefix_set_sizes.append(len(prefixes))

        for length in range(2, self.max_length + 1):
            if not prefixes:
                break
            next_prefixes: list[Cells] = []
            for pos in range(0, len(prefixes), self.FRONTIER_BATCH):
                chunk = prefixes[pos : pos + self.FRONTIER_BATCH]
                # All single-cell right-extensions of the whole chunk in
                # one batched engine pass (shared column slices).
                tables = self.engine.extend_right_tables_many(
                    [TrajectoryPattern(p) for p in chunk]
                )
                for prefix, (nm_table, _) in zip(chunk, tables):
                    for cell in alphabet:
                        candidate = prefix + (cell,)
                        nm = nm_table[cell]
                        scores[candidate] = nm
                        stats.prefixes_evaluated += 1
                        if (
                            length < self.max_length
                            and self._upper_bound(nm, length, s_star) >= omega
                        ):
                            next_prefixes.append(candidate)
            omega = max(omega, self._threshold(scores))
            next_prefixes = [
                c
                for c in next_prefixes
                if self._upper_bound(scores[c], length, s_star) >= omega
            ]
            if len(next_prefixes) > self.max_prefixes:
                next_prefixes.sort(key=lambda c: -scores[c])
                next_prefixes = next_prefixes[: self.max_prefixes]
                stats.truncated = True
            prefixes = next_prefixes
            stats.levels = length
            stats.prefix_set_sizes.append(len(prefixes))

        stats.wall_time_s = time.perf_counter() - t0

        qualifying = [
            (c, nm) for c, nm in scores.items() if len(c) >= self.min_length
        ]
        qualifying.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
        top = qualifying[: self.k]
        miner_stats = MinerStats(
            iterations=stats.levels,
            candidates_evaluated=stats.prefixes_evaluated,
            final_q_size=len(scores),
            wall_time_s=stats.wall_time_s,
        )
        result = MiningResult(
            patterns=[TrajectoryPattern(c) for c, _ in top],
            nm_values=[nm for _, nm in top],
            omega=omega,
            stats=miner_stats,
        )
        return result, stats

    # -- internals -------------------------------------------------------------

    def _upper_bound(self, nm: float, length: int, s_star: float) -> float:
        """Optimistic NM of any extension, unspecified positions at ``s*``.

        By the min-max weighted-mean inequality the NM of an ``n``-length
        extension is at most ``(length * nm + (n - length) * s_star) / n``;
        the bound is maximised at ``n = max_length`` when ``s_star >= nm``
        (the common, loose case the paper complains about) and at
        ``n = length + 1`` otherwise.
        """
        if length >= self.max_length:
            return nm
        candidates = (
            (length * nm + (self.max_length - length) * s_star) / self.max_length,
            (length * nm + s_star) / (length + 1),
        )
        return max(candidates)

    def _threshold(self, scores: dict[Cells, float]) -> float:
        """k-th best qualifying NM so far (``-inf`` until k exist)."""
        qualifying = sorted(
            (nm for c, nm in scores.items() if len(c) >= self.min_length),
            reverse=True,
        )
        if len(qualifying) >= self.k:
            return qualifying[self.k - 1]
        return -math.inf
