"""Unit tests for the 1-extension pruning (section 4.1, Definition 5)."""

from repro.core.pruning import prune_low_patterns, satisfies_one_extension


class TestDefinition5:
    def test_singular_always_satisfies(self):
        assert satisfies_one_extension((7,), high=set())

    def test_prefix_high(self):
        assert satisfies_one_extension((1, 2, 3), high={(1, 2)})

    def test_suffix_high(self):
        assert satisfies_one_extension((1, 2, 3), high={(2, 3)})

    def test_neither_high(self):
        assert not satisfies_one_extension((1, 2, 3), high={(1, 3), (2,)})

    def test_interior_subpattern_does_not_count(self):
        # (2,) is a sub-pattern but not obtained by deleting first/last once.
        assert not satisfies_one_extension((1, 2, 3), high={(2,)})

    def test_accepts_dict_high(self):
        assert satisfies_one_extension((1, 2), high={(1,): -1.0})


class TestPrune:
    def test_partition(self):
        high = {(1, 2), (5,)}
        low = [(9,), (1, 2, 3), (4, 5, 6), (5, 7)]
        kept, pruned = prune_low_patterns(low, high)
        assert set(kept) == {(9,), (1, 2, 3), (5, 7)}
        assert pruned == [(4, 5, 6)]

    def test_empty_low(self):
        kept, pruned = prune_low_patterns([], {(1,)})
        assert kept == [] and pruned == []

    def test_everything_pruned_without_high(self):
        kept, pruned = prune_low_patterns([(1, 2), (3, 4)], set())
        assert kept == []
        assert set(pruned) == {(1, 2), (3, 4)}
