"""Process-wide metrics registry: counters, gauges and ns-precision timers.

Zero-dependency instrumentation for the mining stack.  Three instrument
kinds cover everything the engine, miner and parallel layers need:

* :class:`Counter` -- monotonically increasing event counts (cache hits,
  evaluations, chunks scanned);
* :class:`Gauge` -- last-write-wins scalars (shard skew, frontier size);
* :class:`Histogram` -- streaming summaries (count / total / min / max /
  last) of observed values; :meth:`MetricsRegistry.timer` feeds one with
  ``time.perf_counter_ns`` durations, so timing data keeps nanosecond
  precision without storing individual samples;
* :class:`QuantileHistogram` -- a :class:`Histogram` that additionally
  keeps log-scale bucket counts so snapshots can report approximate
  p50/p95/p99.  The serving layer (:mod:`repro.serve`) uses these for its
  per-endpoint latency distributions (``serve.<op>.latency_ns``), where a
  mean alone hides exactly the tail that overload protection is about;
* :class:`SlidingQuantileHistogram` -- a :class:`QuantileHistogram` that
  also maintains a rolling time window (a ring of bucket epochs), so a
  long-running server can report "last 60 s" quantiles that decay after a
  load spike instead of being averaged away by history, plus exemplar
  trace ids remembered per tail bucket for drill-down.

Disabled fast path
------------------
A disabled registry hands out the shared no-op instruments
(:data:`NULL_COUNTER` and friends) whose mutators do nothing, and
:meth:`MetricsRegistry.timer` returns a no-op context manager that never
reads the clock.  Hot loops therefore pay one attribute check per
instrumentation point when observability is off -- the default.  The
process-global registry (:func:`get_registry`) starts disabled; the CLI
enables it when ``--metrics-out`` / ``--manifest-out`` are given, and
components that need always-on bookkeeping (the miner's
:class:`~repro.core.trajpattern.MinerStats`) own a private enabled
registry instead.
"""

from __future__ import annotations

import math
import time
from typing import Iterator

NS_PER_S = 1_000_000_000


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (no per-sample storage).

    ``unit`` is a label carried into snapshots so consumers can render
    values correctly; timers use ``"ns"``.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max", "last")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def total_seconds(self) -> float:
        """``total`` converted to seconds for ``ns``-unit histograms."""
        return self.total / NS_PER_S if self.unit == "ns" else self.total


#: Geometric bucket growth factor of :class:`QuantileHistogram`: each
#: bucket spans a 1.2x value range, bounding the quantile estimation error
#: to about +/-10% (a factor of ``sqrt(1.2)`` either way before clamping
#: to the tracked min/max) while keeping the bucket table tiny.
_QUANTILE_BUCKET_BASE = 1.2
_LOG_BUCKET_BASE = math.log(_QUANTILE_BUCKET_BASE)

#: Dedicated bucket for zero / negative observations, reported as 0.
_UNDERFLOW_BUCKET = -(1 << 62)


def _bucket_of(value: float) -> int:
    """Log-scale bucket index of a (float) observation."""
    if value > 0.0:
        return int(math.floor(math.log(value) / _LOG_BUCKET_BASE))
    return _UNDERFLOW_BUCKET


def _quantile_from_buckets(
    buckets: dict[int, int], count: int, lo: float, hi: float, q: float
) -> float:
    """Walk cumulative bucket counts and return the ``q``-quantile estimate.

    ``lo`` / ``hi`` are the exactly-tracked extremes used to clamp the
    geometric bucket midpoint; ``count`` must equal ``sum(buckets.values())``.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    if count == 0:
        return 0.0
    rank = math.ceil(q * count)
    seen = 0
    for bucket in sorted(buckets):
        seen += buckets[bucket]
        if seen >= rank:
            if bucket <= _UNDERFLOW_BUCKET:
                return 0.0
            # Geometric midpoint of [base^b, base^(b+1)), clamped to the
            # exactly-tracked extremes.
            mid = math.exp((bucket + 0.5) * _LOG_BUCKET_BASE)
            return min(max(mid, lo), hi)
    return hi  # pragma: no cover - rank <= count by construction


class QuantileHistogram(Histogram):
    """Histogram with log-scale buckets for approximate quantiles.

    Values are counted into geometric buckets (factor
    :data:`_QUANTILE_BUCKET_BASE` wide); :meth:`quantile` walks the
    cumulative counts and returns the geometric midpoint of the bucket the
    requested rank falls in.  Memory stays bounded (one int per occupied
    bucket) no matter how many values are observed, which is what a
    long-running server needs.  Non-positive values land in a dedicated
    underflow bucket reported as 0.
    """

    __slots__ = ("_buckets",)

    def __init__(self, name: str, unit: str = "") -> None:
        super().__init__(name, unit)
        self._buckets: dict[int, int] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        super().observe(value)
        value = float(value)
        bucket = _bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 < q <= 1``) of everything observed."""
        return _quantile_from_buckets(self._buckets, self.count, self.min, self.max, q)

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """JSON-ready ``{"p50": ..., ...}`` view of several quantiles."""
        return {f"p{round(q * 100)}": self.quantile(q) for q in qs}

    def merge_buckets(self, buckets: dict) -> None:
        """Fold another quantile histogram's bucket counts into this one."""
        for bucket, count in buckets.items():
            bucket = int(bucket)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + int(count)


class _Epoch:
    """One time slice of a sliding window: bucket counts plus summary."""

    __slots__ = ("buckets", "exemplars", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.exemplars: dict[int, str] = {}
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class SlidingQuantileHistogram(QuantileHistogram):
    """Quantile histogram that also keeps a rolling time window.

    The window is a ring of ``n_epochs`` bucket tables, each covering
    ``window_s / n_epochs`` seconds of wall time.  :meth:`observe` counts
    into the all-time buckets *and* the current epoch; the ``window_*``
    accessors merge the live epochs, so window quantiles decay to nothing
    within ``window_s`` of the last observation -- unlike the inherited
    all-time quantiles, which never forget.  Epochs rotate lazily (on
    observe/read), so an idle histogram costs nothing.

    ``observe(value, exemplar=...)`` additionally remembers the *last*
    exemplar (in practice a trace id) per window bucket.  Because high
    buckets are the tail, :meth:`window_snapshot` can attach the trace ids
    of recent slow requests to the p99 it reports -- the drill-down hook
    from a dashboard number to one concrete traced request.

    The clock is injectable (monotonic seconds) so tests can drive epoch
    expiry deterministically.
    """

    __slots__ = ("window_s", "n_epochs", "_epoch_s", "_clock", "_epoch_start", "_epochs")

    def __init__(
        self,
        name: str,
        unit: str = "",
        window_s: float = 60.0,
        n_epochs: int = 6,
        clock=time.monotonic,
    ) -> None:
        super().__init__(name, unit)
        if window_s <= 0.0 or n_epochs < 1:
            raise ValueError("window_s must be > 0 and n_epochs >= 1")
        self.window_s = float(window_s)
        self.n_epochs = int(n_epochs)
        self._epoch_s = self.window_s / self.n_epochs
        self._clock = clock
        self._epoch_start = clock()
        # _epochs[0] is the current epoch, _epochs[-1] the oldest live one.
        self._epochs = [_Epoch() for _ in range(self.n_epochs)]

    def _advance(self) -> None:
        """Rotate expired epochs out of the ring (lazy, amortised O(1))."""
        now = self._clock()
        steps = int((now - self._epoch_start) / self._epoch_s)
        if steps <= 0:
            return
        if steps >= self.n_epochs:
            self._epochs = [_Epoch() for _ in range(self.n_epochs)]
        else:
            del self._epochs[self.n_epochs - steps :]
            self._epochs[:0] = [_Epoch() for _ in range(steps)]
        self._epoch_start += steps * self._epoch_s

    def observe(self, value: float, exemplar: str | None = None) -> None:
        # Flattened (no super() chain, one bucket computation): this runs
        # once per served request, so frame and duplicate-log costs show
        # up directly in the telemetry-overhead benchmark.
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        bucket = _bucket_of(value)
        buckets = self._buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1
        if self._clock() - self._epoch_start >= self._epoch_s:
            self._advance()
        epoch = self._epochs[0]
        epoch.buckets[bucket] = epoch.buckets.get(bucket, 0) + 1
        epoch.count += 1
        epoch.total += value
        if value < epoch.min:
            epoch.min = value
        if value > epoch.max:
            epoch.max = value
        if exemplar is not None:
            epoch.exemplars[bucket] = exemplar

    # -- window accessors ------------------------------------------------------

    def window_count(self) -> int:
        self._advance()
        return sum(epoch.count for epoch in self._epochs)

    def _merged_window(self) -> tuple[dict[int, int], int, float, float, float]:
        self._advance()
        buckets: dict[int, int] = {}
        count = 0
        total = 0.0
        lo = float("inf")
        hi = float("-inf")
        for epoch in self._epochs:
            if epoch.count == 0:
                continue
            count += epoch.count
            total += epoch.total
            lo = min(lo, epoch.min)
            hi = max(hi, epoch.max)
            for bucket, n in epoch.buckets.items():
                buckets[bucket] = buckets.get(bucket, 0) + n
        return buckets, count, total, lo, hi

    def window_quantile(self, q: float) -> float:
        """Approximate ``q``-quantile of the last ``window_s`` seconds."""
        buckets, count, _, lo, hi = self._merged_window()
        return _quantile_from_buckets(buckets, count, lo, hi, q)

    def window_quantiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, float]:
        buckets, count, _, lo, hi = self._merged_window()
        return {
            f"p{round(q * 100)}": _quantile_from_buckets(buckets, count, lo, hi, q)
            for q in qs
        }

    def window_exemplars(self, n: int = 3) -> list[str]:
        """Exemplars of the ``n`` highest-value window buckets (the tail).

        Newest epoch wins when several epochs hold an exemplar for the
        same bucket; order is highest bucket first.
        """
        self._advance()
        by_bucket: dict[int, str] = {}
        for epoch in reversed(self._epochs):  # oldest first, newest overwrites
            by_bucket.update(epoch.exemplars)
        return [by_bucket[b] for b in sorted(by_bucket, reverse=True)[:n]]

    def window_snapshot(self) -> dict:
        """JSON-ready rolling-window view (quantiles, count, rate, exemplars)."""
        buckets, count, total, lo, hi = self._merged_window()
        return {
            "window_s": self.window_s,
            "count": count,
            "rate_per_s": count / self.window_s,
            "mean": total / count if count else 0.0,
            "max": hi if count else 0.0,
            "quantiles": {
                f"p{round(q * 100)}": _quantile_from_buckets(buckets, count, lo, hi, q)
                for q in (0.5, 0.95, 0.99)
            },
            "exemplars": self.window_exemplars(),
        }


class _NullInstrument:
    """Shared do-nothing stand-in handed out by disabled registries."""

    __slots__ = ()
    name = ""
    unit = ""
    value = 0
    count = 0
    total = 0.0
    min = float("inf")
    max = float("-inf")
    last = 0.0
    mean = 0.0
    total_seconds = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: str | None = None) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return {f"p{round(q * 100)}": 0.0 for q in qs}

    def merge_buckets(self, buckets: dict) -> None:
        pass

    def window_count(self) -> int:
        return 0

    def window_quantile(self, q: float) -> float:
        return 0.0

    def window_quantiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, float]:
        return {f"p{round(q * 100)}": 0.0 for q in qs}

    def window_exemplars(self, n: int = 3) -> list[str]:
        return []

    def window_snapshot(self) -> dict:
        return {}


class _NullTimer:
    """No-op timing context: never touches the clock."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()
_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager observing a ``perf_counter_ns`` duration."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Named instrument store with an enabled/disabled fast path.

    Instruments are created on first access and survive until
    :meth:`reset`.  While disabled, accessors return the shared no-op
    instruments and never create state, so instrumented code needs no
    ``if`` of its own.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- configuration ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (enabled state is unchanged)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, unit: str = "") -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, unit)
        return instrument

    def quantile_histogram(self, name: str, unit: str = "") -> QuantileHistogram:
        """A histogram that additionally tracks approximate quantiles.

        Shares the ``_histograms`` namespace with :meth:`histogram`; the
        first accessor to create an instrument decides its kind, so use
        one accessor consistently per name.
        """
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if not isinstance(instrument, QuantileHistogram):
            instrument = self._histograms[name] = QuantileHistogram(name, unit)
        return instrument

    def sliding_quantile_histogram(
        self, name: str, unit: str = "", window_s: float = 60.0
    ) -> SlidingQuantileHistogram:
        """A quantile histogram with an additional rolling time window.

        Same namespace rules as :meth:`quantile_histogram`; ``window_s``
        only applies on first creation.
        """
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if not isinstance(instrument, SlidingQuantileHistogram):
            instrument = self._histograms[name] = SlidingQuantileHistogram(
                name, unit, window_s=window_s
            )
        return instrument

    def find_histogram(self, name: str) -> Histogram | None:
        """An existing histogram by name, or ``None`` (never creates one).

        Read-side helper for consumers (the server's ``stats`` op) that
        want to report an instrument only if something recorded into it.
        """
        if not self.enabled:
            return None
        return self._histograms.get(name)

    def timer(self, name: str):
        """Time a ``with`` block into the ``ns``-unit histogram ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.histogram(name, unit="ns"))

    # -- export / aggregation -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: self._histogram_snapshot(h)
                for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def _histogram_snapshot(h: Histogram) -> dict:
        data = {
            "count": h.count,
            "total": h.total,
            "min": h.min if h.count else 0.0,
            "max": h.max if h.count else 0.0,
            "mean": h.mean,
            "last": h.last,
            "unit": h.unit,
        }
        if isinstance(h, QuantileHistogram):
            data["quantiles"] = h.quantiles()
            data["buckets"] = {str(b): c for b, c in sorted(h._buckets.items())}
        if isinstance(h, SlidingQuantileHistogram):
            data["window"] = h.window_snapshot()
        return data

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram totals add, histogram min/max widen, gauges
        take the incoming value.  Used to aggregate shard-worker and
        per-run registries into the process-global one.  No-op while
        disabled.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            if "buckets" in data:
                histogram = self.quantile_histogram(name, unit=data.get("unit", ""))
                histogram.merge_buckets(data["buckets"])
            else:
                histogram = self.histogram(name, unit=data.get("unit", ""))
            count = int(data.get("count", 0))
            if count == 0:
                continue
            histogram.count += count
            histogram.total += float(data.get("total", 0.0))
            histogram.min = min(histogram.min, float(data.get("min", 0.0)))
            histogram.max = max(histogram.max, float(data.get("max", 0.0)))
            histogram.last = float(data.get("last", 0.0))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current contents into this one."""
        self.merge_snapshot(other.snapshot())


#: Process-global registry; disabled until something opts in.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry (shared by engine, miner and CLI)."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, unit: str = "") -> Histogram:
    return _REGISTRY.histogram(name, unit)


def quantile_histogram(name: str, unit: str = "") -> QuantileHistogram:
    return _REGISTRY.quantile_histogram(name, unit)


def sliding_quantile_histogram(
    name: str, unit: str = "", window_s: float = 60.0
) -> SlidingQuantileHistogram:
    return _REGISTRY.sliding_quantile_histogram(name, unit, window_s)


def timer(name: str):
    return _REGISTRY.timer(name)


def instruments(registry: MetricsRegistry) -> Iterator[str]:
    """Names of every instrument in ``registry`` (testing helper)."""
    yield from registry._counters
    yield from registry._gauges
    yield from registry._histograms
