"""Validation tests for the NDJSON serving protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pattern import WILDCARD
from repro.serve import protocol


def test_encode_decode_roundtrip():
    line = protocol.encode({"op": "health", "id": 3})
    assert line.endswith(b"\n")
    assert protocol.decode_line(line) == {"op": "health", "id": 3}


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2, 3]\n", b'"just a string"\n', b"\xff\xfe\n"],
)
def test_decode_rejects_garbage(line):
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(line)


def test_request_id_accepts_scalars_only():
    assert protocol.request_id({"id": "abc"}) == "abc"
    assert protocol.request_id({"id": 7}) == 7
    assert protocol.request_id({}) is None
    with pytest.raises(protocol.ProtocolError):
        protocol.request_id({"id": {"nested": 1}})


def test_parse_timeout_ms():
    assert protocol.parse_timeout_ms({}, 250.0) == 250.0
    assert protocol.parse_timeout_ms({"timeout_ms": 10}, 250.0) == 10.0
    assert protocol.parse_timeout_ms({}, None) is None
    for bad in (0, -5, "fast", True):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_timeout_ms({"timeout_ms": bad}, None)


def test_parse_score_accepts_wildcards_and_validates_range():
    patterns, measure = protocol.parse_score(
        {"patterns": [[0, WILDCARD, 5]], "measure": "match"}, n_cells=10
    )
    assert measure == "match"
    assert patterns[0].cells == (0, WILDCARD, 5)


@pytest.mark.parametrize(
    "request_",
    [
        {},  # missing patterns
        {"patterns": []},
        {"patterns": "nope"},
        {"patterns": [[]]},
        {"patterns": [[1]], "measure": "cosine"},
        {"patterns": [[99]]},  # out of grid
        {"patterns": [[-2]]},  # below the wildcard
        {"patterns": [[1.5]]},  # non-integer cell
        {"patterns": [[True]]},  # bool is not a cell id
        {"patterns": [list(range(200))]},  # too long
    ],
)
def test_parse_score_rejects_malformed(request_):
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_score(request_, n_cells=10)


def test_parse_score_caps_pattern_count():
    too_many = {"patterns": [[0]] * (protocol.MAX_PATTERNS_PER_REQUEST + 1)}
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_score(too_many, n_cells=10)


def test_parse_predict_happy_path():
    recent, sigma = protocol.parse_predict(
        {"recent": [[0.0, 0.0], [1.0, 0.5]], "sigma": 0.1}
    )
    assert recent.shape == (2, 2)
    assert sigma == 0.1


@pytest.mark.parametrize(
    "request_",
    [
        {"recent": [[0, 0]], "sigma": 0.1},  # too short
        {"recent": "nope", "sigma": 0.1},
        {"recent": [[0, 0], [1]], "sigma": 0.1},  # ragged point
        {"recent": [[0, 0], ["a", 1]], "sigma": 0.1},
        {"recent": [[0, 0], [1, float("nan")]], "sigma": 0.1},
        {"recent": [[0, 0], [1, 1]]},  # missing sigma
        {"recent": [[0, 0], [1, 1]], "sigma": 0},
        {"recent": [[0, 0], [1, 1]], "sigma": float("inf")},
    ],
)
def test_parse_predict_rejects_malformed(request_):
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_predict(request_)


def test_parse_predict_nan_encoded_as_number():
    # json.loads turns "NaN" into float nan -- must still be rejected.
    import json

    request = json.loads('{"recent": [[0, 0], [NaN, 1]], "sigma": 0.1}')
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_predict(request)


def test_responses_carry_id_and_error_code():
    ok = protocol.ok_response(4, values=[1.0])
    assert ok == {"ok": True, "id": 4, "values": [1.0]}
    err = protocol.error_response(None, "overloaded", reason="queue_full")
    assert err == {"ok": False, "error": "overloaded", "reason": "queue_full"}


def test_values_field_converts_numpy_scalars():
    values = protocol.values_field(np.array([1.5, 2.5]))
    assert values == [1.5, 2.5]
    assert all(type(v) is float for v in values)


def test_check_version_accepts_absent_and_current():
    protocol.check_version({})  # absent v: whatever the server speaks
    protocol.check_version({"v": protocol.PROTOCOL_VERSION})


def test_check_version_rejects_mismatch_with_both_versions_named():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.check_version({"v": protocol.PROTOCOL_VERSION + 1})
    assert exc.value.code == "bad_request"
    assert exc.value.fields["client_version"] == protocol.PROTOCOL_VERSION + 1
    assert exc.value.fields["server_version"] == protocol.PROTOCOL_VERSION


@pytest.mark.parametrize("bad", [True, 1.5, "1", []])
def test_check_version_rejects_non_integer(bad):
    with pytest.raises(protocol.ProtocolError):
        protocol.check_version({"v": bad})


def test_parse_hello_defaults_and_capabilities():
    version, require = protocol.parse_hello({})
    assert version == protocol.PROTOCOL_VERSION
    assert require == ()
    _, require = protocol.parse_hello({"require": ["score", "trace"]})
    assert require == ("score", "trace")
    assert set(protocol.OPS) <= set(protocol.CAPABILITIES)


def test_parse_hello_rejects_unknown_capability_naming_it():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_hello({"require": ["score", "time-travel"]})
    assert exc.value.fields["missing"] == ["time-travel"]
    assert exc.value.fields["capabilities"] == list(protocol.CAPABILITIES)


def test_parse_hello_rejects_version_skew():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_hello({"version": 99})
    assert exc.value.fields["server_version"] == protocol.PROTOCOL_VERSION
