"""Gaussian location distributions and the ``Prob(l, sigma, p, delta)`` kernel.

Section 3.1 models the true location of a mobile object at a snapshot as a
bivariate normal ``N((l_x, l_y), sigma^2 I)`` -- independent axes with equal
variance, ``sigma = U / c`` where ``U`` is the tolerable uncertainty distance
and ``c`` a confidence constant.  Section 3.3 then needs, for every pattern
position ``p``, the probability that the true location falls within the
indifference distance ``delta`` of ``p``.

The paper leaves the shape of the "within delta" region implicit.  We
implement both natural readings and make the choice explicit:

* **box** (default): ``|X - p_x| <= delta`` and ``|Y - p_y| <= delta``.
  Axis-separable, so it is a product of two normal-CDF differences -- cheap,
  and consistent with the grid discretisation (a cell is itself a box).
* **disk**: Euclidean ``||(X, Y) - p|| <= delta``.  With equal axis variance
  the squared distance is ``sigma^2`` times a noncentral chi-square with two
  degrees of freedom, so the disk probability is an ``ncx2`` CDF.

The two agree up to a constant factor (a disk inscribed in the box) and the
ablation benchmark A3 confirms the mined pattern ranking is insensitive to
the choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.uncertainty.logspace import safe_log

_SQRT2 = np.sqrt(2.0)


class ProbModel(enum.Enum):
    """Geometry of the "within ``delta``" region in ``Prob(l, sigma, p, delta)``."""

    BOX = "box"
    DISK = "disk"


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF, vectorised via ``erf``."""
    return 0.5 * (1.0 + special.erf(z / _SQRT2))


def _interval_prob(mean: np.ndarray, sigma: np.ndarray, center: np.ndarray, delta: float) -> np.ndarray:
    """P(|X - center| <= delta) for ``X ~ N(mean, sigma^2)``, elementwise."""
    lo = (center - delta - mean) / sigma
    hi = (center + delta - mean) / sigma
    return _normal_cdf(hi) - _normal_cdf(lo)


def prob_within_box(
    mean: np.ndarray,
    sigma: np.ndarray,
    center: np.ndarray,
    delta: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Box-semantics ``Prob``: both axes within ``delta`` of ``center``.

    Parameters
    ----------
    mean:
        Snapshot means, array broadcastable to ``(..., 2)``.
    sigma:
        Per-snapshot standard deviation, broadcastable to ``(...)``.
    center:
        Query positions, broadcastable to ``(..., 2)``.
    delta:
        Indifference distance (half-width of the box).
    out:
        Optional preallocated result array (the engine's chunked index
        build writes each chunk straight into its slice of the full
        probability array).
    """
    mean = np.asarray(mean, dtype=float)
    center = np.asarray(center, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    _validate(sigma, delta)
    px = _interval_prob(mean[..., 0], sigma, center[..., 0], delta)
    py = _interval_prob(mean[..., 1], sigma, center[..., 1], delta)
    if out is not None:
        return np.multiply(px, py, out=out)
    return px * py


def prob_within_disk(
    mean: np.ndarray,
    sigma: np.ndarray,
    center: np.ndarray,
    delta: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Disk-semantics ``Prob``: Euclidean distance to ``center`` at most ``delta``.

    For ``(X, Y) ~ N(mean, sigma^2 I)`` the squared distance to ``center``
    divided by ``sigma^2`` follows a noncentral chi-square distribution with
    2 degrees of freedom and noncentrality ``||mean - center||^2 / sigma^2``.
    """
    # scipy.stats costs ~45 MiB of resident memory to import; only the
    # non-default disk model needs it, so keep it off the module import
    # path (the mine/serve process floor matters for out-of-core runs).
    from scipy import stats

    mean = np.asarray(mean, dtype=float)
    center = np.asarray(center, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    _validate(sigma, delta)
    d2 = np.sum((mean - center) ** 2, axis=-1)
    nc = d2 / sigma**2
    q = (delta / sigma) ** 2
    result = stats.ncx2.cdf(q, df=2, nc=nc)
    if out is not None:
        out[...] = result
        return out
    return result


def prob_within(
    mean: np.ndarray,
    sigma: np.ndarray,
    center: np.ndarray,
    delta: float,
    model: ProbModel = ProbModel.BOX,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``Prob(l, sigma, p, delta)`` under the selected geometry."""
    if model is ProbModel.BOX:
        return prob_within_box(mean, sigma, center, delta, out=out)
    if model is ProbModel.DISK:
        return prob_within_disk(mean, sigma, center, delta, out=out)
    raise ValueError(f"unknown probability model: {model!r}")


def log_prob_within(
    mean: np.ndarray,
    sigma: np.ndarray,
    center: np.ndarray,
    delta: float,
    model: ProbModel = ProbModel.BOX,
) -> np.ndarray:
    """``log Prob(l, sigma, p, delta)`` with zeros mapped to the log floor."""
    return safe_log(prob_within(mean, sigma, center, delta, model=model))


def sigma_from_uncertainty(uncertainty: float, c: float) -> float:
    """The paper's ``sigma = U / c`` (section 3.1).

    ``c`` trades off report frequency against confidence: with ``c = 1, 2, 3``
    the object is within ``U`` of the prediction with probability ~0.68,
    ~0.95 and ~0.997 respectively.
    """
    if uncertainty <= 0:
        raise ValueError("uncertainty distance U must be positive")
    if c <= 0:
        raise ValueError("confidence constant c must be positive")
    return uncertainty / c


def _validate(sigma: np.ndarray, delta: float) -> None:
    if np.any(np.asarray(sigma) <= 0):
        raise ValueError("sigma must be positive")
    if delta <= 0:
        raise ValueError("delta must be positive")


@dataclass(frozen=True, slots=True)
class GaussianLocation:
    """One snapshot of an uncertain trajectory: ``N((x, y), sigma^2 I)``.

    This is the scalar-friendly view used in examples and tests; bulk code
    keeps means and sigmas in numpy arrays.
    """

    x: float
    y: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    @property
    def mean(self) -> np.ndarray:
        return np.array([self.x, self.y])

    def prob_near(
        self, px: float, py: float, delta: float, model: ProbModel = ProbModel.BOX
    ) -> float:
        """Probability of being within ``delta`` of ``(px, py)``."""
        return float(
            prob_within(self.mean, np.asarray(self.sigma), np.array([px, py]), delta, model)
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` samples of the true location, shape ``(n, 2)``."""
        return rng.normal(loc=self.mean, scale=self.sigma, size=(n, 2))
