"""Log-space numerics.

Eq. 2 multiplies one probability per pattern position; for realistic
patterns over imprecise data those probabilities are small and products
underflow quickly, so the whole library works with ``log`` probabilities
(Eq. 3 is itself defined on the logarithm).  Probabilities of exactly zero
are represented by a large negative *floor* instead of ``-inf`` so that the
NM of a pattern stays finite, orderable and usable as a mining threshold.
"""

from __future__ import annotations

import numpy as np

#: Stand-in for ``log(0)``: below any log-probability the engine produces.
LOG_ZERO: float = -1e30


def safe_log(p: np.ndarray | float, floor: float = LOG_ZERO) -> np.ndarray | float:
    """``log(p)`` with zeros mapped to ``floor`` instead of ``-inf``.

    Negative inputs are rejected -- they indicate a bug upstream, not a
    numerical edge case.
    """
    p_arr = np.asarray(p, dtype=float)
    if np.any(p_arr < 0):
        raise ValueError("probabilities must be non-negative")
    with np.errstate(divide="ignore"):
        out = np.where(p_arr > 0, np.log(np.maximum(p_arr, np.finfo(float).tiny)), floor)
    if np.isscalar(p):
        return float(out)
    return out


def clamp_log_prob(
    log_p: np.ndarray | float, min_log_prob: float
) -> np.ndarray | float:
    """Clamp log-probabilities from below at ``min_log_prob``.

    This implements the probability floor discussed in DESIGN.md: every
    per-position probability is treated as at least ``exp(min_log_prob)`` so
    that a single impossible position does not collapse a whole pattern's NM
    to ``-inf``.
    """
    out = np.maximum(np.asarray(log_p, dtype=float), min_log_prob)
    if np.isscalar(log_p):
        return float(out)
    return out


def log_sum_exp(log_values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Numerically stable ``log(sum(exp(v)))``."""
    log_values = np.asarray(log_values, dtype=float)
    if log_values.size == 0:
        raise ValueError("log_sum_exp of an empty array is undefined")
    m = np.max(log_values, axis=axis, keepdims=True)
    # A block of all-LOG_ZERO values stays LOG_ZERO instead of producing nan.
    shifted = np.where(np.isfinite(m), log_values - m, LOG_ZERO)
    summed = np.log(np.sum(np.exp(shifted), axis=axis))
    if axis is None:
        return float(m.reshape(-1)[0]) + float(summed)
    result = np.squeeze(m, axis=axis) + summed
    return result


def log_mean_exp(log_values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Numerically stable ``log(mean(exp(v)))``."""
    log_values = np.asarray(log_values, dtype=float)
    n = log_values.size if axis is None else log_values.shape[axis]
    return log_sum_exp(log_values, axis=axis) - np.log(n)
