"""Incremental index maintenance: append/evict folds vs from-scratch builds.

The contract under test is *bit identity*: after any interleaving of
appends and sliding-window evictions, the live engine's flat index arrays
-- and therefore every NM/match it will ever compute -- must equal a
from-scratch :class:`NMEngine` build over the surviving trajectories
exactly, not approximately.  Hypothesis drives the interleavings; the
fixed tests pin the merge/evict primitives, the epoch-staleness guard and
the warm-started miner's exactness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import index_cache
from repro.core.engine import EngineConfig, NMEngine, StaleIndexError
from repro.core.incremental import (
    IncrementalIndexer,
    collect_delta_entries,
    drop_leading_rows,
    merge_sorted_entries,
)
from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import zebranet_dataset
from repro.trajectory.dataset import TrajectoryDataset

CONFIG = EngineConfig(delta=0.05, min_prob=1e-6)


@pytest.fixture(scope="module")
def pool():
    """A trajectory pool plus a grid wide enough for every member."""
    dataset = zebranet_dataset(n_trajectories=14, n_ticks=20, seed=23)
    return list(dataset), dataset.make_grid(0.05)


def _fresh_arrays(trajectories, grid):
    return NMEngine(
        TrajectoryDataset(list(trajectories)), grid, CONFIG
    ).index_arrays()


def _assert_same_index(engine, trajectories, grid):
    expected = _fresh_arrays(trajectories, grid)
    got = engine.index_arrays()
    for name, a, b in zip(("cells", "rows", "vals"), got, expected):
        np.testing.assert_array_equal(a, b, err_msg=f"{name} diverged")


class TestMergePrimitives:
    def test_merge_equals_lexsort_of_concatenation(self):
        rng = np.random.default_rng(5)
        n_rows = 40

        def sorted_entries(n, rows_lo, rows_hi):
            cells = rng.integers(0, 25, n)
            rows = rng.integers(rows_lo, rows_hi, n)
            # make (cell, row) unique per side
            seen, keep = set(), []
            for i, (c, r) in enumerate(zip(cells, rows)):
                if (c, r) not in seen:
                    seen.add((c, r))
                    keep.append(i)
            cells, rows = cells[keep], rows[keep]
            order = np.lexsort((rows, cells))
            vals = -rng.uniform(0.1, 5.0, len(keep))
            return (
                cells[order].astype(np.int64),
                rows[order].astype(np.int64),
                vals,
            )

        base = sorted_entries(60, 0, 30)
        delta = sorted_entries(25, 30, n_rows)  # disjoint row range
        merged = merge_sorted_entries(base, delta, n_rows)
        cells = np.concatenate([base[0], delta[0]])
        rows = np.concatenate([base[1], delta[1]])
        vals = np.concatenate([base[2], delta[2]])
        order = np.lexsort((rows, cells))
        np.testing.assert_array_equal(merged[0], cells[order])
        np.testing.assert_array_equal(merged[1], rows[order])
        np.testing.assert_array_equal(merged[2], vals[order])

    def test_merge_empty_sides_are_identity(self):
        empty = (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.float64),
        )
        side = (
            np.array([1, 2], np.int64),
            np.array([0, 1], np.int64),
            np.array([-1.0, -2.0]),
        )
        assert merge_sorted_entries(side, empty, 2) == side
        assert merge_sorted_entries(empty, side, 2) == side

    def test_overflow_guard_falls_back_to_lexsort(self):
        # cell ids large enough that cell * n_rows overflows int64
        huge = np.int64(2**40)
        base = (np.array([huge], np.int64), np.array([0], np.int64), np.array([-1.0]))
        delta = (
            np.array([huge - 1], np.int64),
            np.array([1], np.int64),
            np.array([-2.0]),
        )
        merged = merge_sorted_entries(base, delta, 2**25)
        np.testing.assert_array_equal(merged[0], [huge - 1, huge])
        np.testing.assert_array_equal(merged[1], [1, 0])

    def test_drop_leading_rows_filters_and_renumbers(self):
        entries = (
            np.array([0, 0, 3, 7], np.int64),
            np.array([1, 4, 2, 3], np.int64),
            np.array([-1.0, -2.0, -3.0, -4.0]),
        )
        cells, rows, vals = drop_leading_rows(entries, 2)
        np.testing.assert_array_equal(cells, [0, 3, 7])
        np.testing.assert_array_equal(rows, [2, 0, 1])
        np.testing.assert_array_equal(vals, [-2.0, -3.0, -4.0])
        assert drop_leading_rows(entries, 0) == entries

    def test_collect_delta_entries_matches_fresh_rows(self, pool):
        trajectories, grid = pool
        base, extra = trajectories[:4], trajectories[4:6]
        offset = TrajectoryDataset(base).total_snapshots()
        cells, rows, vals = collect_delta_entries(extra, grid, CONFIG, offset)
        assert rows.min() >= offset
        # The same rows appear (row-shifted) in the combined fresh build.
        full = _fresh_arrays(base + extra, grid)
        mask = full[1] >= offset
        order = np.lexsort((rows, cells))
        np.testing.assert_array_equal(cells[order], full[0][mask])
        np.testing.assert_array_equal(rows[order], full[1][mask])
        np.testing.assert_array_equal(vals[order], full[2][mask])


class TestIncrementalIndexer:
    def test_append_then_evict_is_bit_identical(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:5]), grid, CONFIG)
        indexer = IncrementalIndexer(engine)
        indexer.append(trajectories[5:9])
        _assert_same_index(engine, trajectories[:9], grid)
        indexer.evict(3)
        _assert_same_index(engine, trajectories[3:9], grid)
        assert engine.index_epoch == 3  # build + append + evict

    def test_window_auto_evicts_oldest(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:5]), grid, CONFIG)
        indexer = IncrementalIndexer(engine, window=6)
        stats = indexer.append(trajectories[5:9])
        assert stats["appended"] == 4 and stats["evicted"] == 3
        assert len(engine.dataset) == 6
        _assert_same_index(engine, trajectories[3:9], grid)

    def test_evict_everything_is_refused(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:3]), grid, CONFIG)
        indexer = IncrementalIndexer(engine)
        with pytest.raises(ValueError, match="non-empty"):
            indexer.evict(3)

    def test_scoring_after_folds_matches_fresh_engine(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:6]), grid, CONFIG)
        IncrementalIndexer(engine, window=7).append(trajectories[6:10])
        fresh = NMEngine(TrajectoryDataset(trajectories[3:10]), grid, CONFIG)
        from repro.core.pattern import TrajectoryPattern

        cells = fresh.active_cells
        patterns = [
            TrajectoryPattern((int(cells[0]), int(cells[1]))),
            TrajectoryPattern((int(cells[2]),)),
        ]
        np.testing.assert_array_equal(
            engine.nm_batch(patterns), fresh.nm_batch(patterns)
        )
        np.testing.assert_array_equal(
            engine.match_batch(patterns), fresh.match_batch(patterns)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.integers(1, 3)),
                st.tuples(st.just("evict"), st.integers(1, 2)),
            ),
            min_size=1,
            max_size=6,
        ),
        n_base=st.integers(2, 4),
    )
    def test_any_interleaving_is_bit_identical(self, pool, ops, n_base):
        """Property: every append/evict interleaving == fresh build, 0 ULP."""
        trajectories, grid = pool
        surviving = list(trajectories[:n_base])
        cursor = n_base
        engine = NMEngine(TrajectoryDataset(surviving), grid, CONFIG)
        indexer = IncrementalIndexer(engine)
        for kind, count in ops:
            if kind == "append":
                batch = trajectories[cursor : cursor + count]
                if not batch:
                    continue  # pool exhausted
                cursor += len(batch)
                indexer.append(batch)
                surviving.extend(batch)
            else:
                count = min(count, len(surviving) - 1)
                if count <= 0:
                    continue  # never empty the engine
                indexer.evict(count)
                del surviving[:count]
        _assert_same_index(engine, surviving, grid)


class TestEpochStaleness:
    def test_replace_index_bumps_epoch_and_stale_check_raises(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:4]), grid, CONFIG)
        pinned = engine.index_epoch
        engine.require_epoch(pinned)  # current epoch passes
        IncrementalIndexer(engine).append(trajectories[4:5])
        assert engine.index_epoch == pinned + 1
        with pytest.raises(StaleIndexError, match="epoch changed"):
            engine.require_epoch(pinned)

    def test_miner_raises_on_mid_run_mutation(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:5]), grid, CONFIG)
        miner = TrajPatternMiner(engine, k=3)
        indexer = IncrementalIndexer(engine)

        # Sabotage: the first batch evaluation mutates the index in place,
        # as a buggy concurrent ingest would.
        original = miner._evaluate_batch
        armed = {"done": False}

        def sabotaged(book, batch, stats):
            if not armed["done"]:
                armed["done"] = True
                indexer.append(trajectories[5:6])
            return original(book, batch, stats)

        miner._evaluate_batch = sabotaged
        with pytest.raises(StaleIndexError):
            miner.mine()


class TestWarmStartedMining:
    def test_warm_topk_equals_cold_topk(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:8]), grid, CONFIG)
        previous = TrajPatternMiner(engine, k=4).mine()
        assert previous.warm_state is not None
        assert len(previous.warm_state) > 0

        indexer = IncrementalIndexer(engine)
        indexer.append(trajectories[8:11])
        warm = TrajPatternMiner(
            engine, k=4, warm_state=previous.warm_state
        ).mine()
        cold = TrajPatternMiner(
            NMEngine(TrajectoryDataset(trajectories[:11]), grid, CONFIG), k=4
        ).mine()
        assert [
            (p.cells, nm) for p, nm in warm.as_pairs()
        ] == [(p.cells, nm) for p, nm in cold.as_pairs()]
        assert warm.omega == cold.omega

    def test_warm_state_round_trips_through_result(self, pool):
        trajectories, grid = pool
        engine = NMEngine(TrajectoryDataset(trajectories[:6]), grid, CONFIG)
        result = TrajPatternMiner(engine, k=3).mine()
        again = TrajPatternMiner(
            engine, k=3, warm_state=result.warm_state
        ).mine()
        assert [p.cells for p in again.patterns] == [
            p.cells for p in result.patterns
        ]


class TestPersist:
    def test_persist_uses_fresh_content_key(self, pool, tmp_path):
        trajectories, grid = pool
        config = EngineConfig(delta=0.05, min_prob=1e-6, cache_dir=str(tmp_path))
        engine = NMEngine(TrajectoryDataset(trajectories[:5]), grid, config)
        original_key = index_cache.cache_key(engine.dataset, grid, config)
        indexer = IncrementalIndexer(engine)
        indexer.append(trajectories[5:7])
        path = indexer.persist()
        assert path is not None and path.exists()
        new_key = index_cache.cache_key(engine.dataset, grid, config)
        assert new_key != original_key
        assert path == index_cache.cache_path(tmp_path, new_key)
