"""Standalone perf-trajectory runner: engine + fig4a mining benches.

Runs the engine micro-benchmarks (index construction, candidate
evaluation) and a fig4a-style mining workload, then writes
``BENCH_engine.json`` so subsequent PRs have a recorded perf trajectory.
Unlike the pytest-benchmark modules this script needs no plugins and
explicitly compares the batched paths against the scalar reference paths
(per-pattern ``nm`` loop, per-snapshot index collection), reporting
throughput ratios.

Usage::

    PYTHONPATH=src python benchmarks/run_benches.py [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import grid_with_cells, zebranet_dataset

#: Engine micro-bench workload (mirrors benchmarks/test_bench_engine.py).
ENGINE_WORKLOAD = dict(n_trajectories=50, n_ticks=60, sigma=0.01, seed=7)
ENGINE_CELL_SIZE = 0.02
ENGINE_MIN_PROB = 1e-4

#: Mining workload (mirrors the fig4a bench baseline in conftest.py).
MINING_WORKLOAD = dict(n_trajectories=30, n_ticks=40, sigma=0.01, seed=7)
MINING_TARGET_CELLS = 1024
MINING_K = 5


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Best wall time over ``rounds`` calls, plus the last return value."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_index_build(dataset, grid, config, rounds: int) -> dict:
    """Vectorised vs scalar (reference) index entry collection."""
    engine = NMEngine(dataset, grid, config)
    vec_s, _ = _best_of(engine._collect_index_entries, rounds)
    scalar_s, _ = _best_of(engine._collect_index_entries_scalar, rounds)
    return {
        "n_snapshots": dataset.total_snapshots(),
        "n_entries": engine.n_index_entries,
        "scalar_s": scalar_s,
        "vectorised_s": vec_s,
        "speedup": scalar_s / vec_s if vec_s > 0 else float("inf"),
    }


def bench_candidate_eval(engine, rounds: int, n_candidates: int = 400) -> dict:
    """Batched vs scalar evaluation of one mixed-length candidate frontier."""
    rng = np.random.default_rng(11)
    cells = engine.active_cells
    candidates = [
        TrajectoryPattern(
            tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 6)))
        )
        for _ in range(n_candidates)
    ]
    batched_s, batched_values = _best_of(
        lambda: engine.nm_batch(candidates), rounds
    )
    scalar_s, scalar_values = _best_of(
        lambda: np.array([engine.nm(p) for p in candidates]), rounds
    )
    assert np.allclose(batched_values, scalar_values, atol=1e-9)
    return {
        "n_candidates": n_candidates,
        "scalar_s": scalar_s,
        "scalar_candidates_per_s": n_candidates / scalar_s,
        "batched_s": batched_s,
        "batched_candidates_per_s": n_candidates / batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
    }


def bench_mining() -> dict:
    """Fig. 4(a)-style mining wall time with batch instrumentation."""
    dataset = zebranet_dataset(**MINING_WORKLOAD)
    grid = grid_with_cells(dataset, MINING_TARGET_CELLS)
    cell = min(grid.gx, grid.gy)
    engine = NMEngine(
        dataset, grid, EngineConfig(delta=cell, min_prob=ENGINE_MIN_PROB)
    )
    result = TrajPatternMiner(engine, k=MINING_K).mine()
    stats = result.stats
    return {
        "k": MINING_K,
        "wall_time_s": stats.wall_time_s,
        "eval_time_s": stats.eval_time_s,
        "candidates_evaluated": stats.candidates_evaluated,
        "candidates_per_s": (
            stats.candidates_evaluated / stats.eval_time_s
            if stats.eval_time_s > 0
            else float("inf")
        ),
        "eval_batches": stats.eval_batches,
        "max_batch_size": stats.max_batch_size,
        "iterations": stats.iterations,
    }


def run(rounds: int = 3) -> dict:
    dataset = zebranet_dataset(**ENGINE_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)

    index_build = bench_index_build(dataset, grid, config, rounds)
    engine = NMEngine(dataset, grid, config)
    candidate_eval = bench_candidate_eval(engine, rounds)
    mining = bench_mining()

    return {
        "generated_by": "benchmarks/run_benches.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "rounds": rounds,
        "engine_workload": {
            **ENGINE_WORKLOAD,
            "cell_size": ENGINE_CELL_SIZE,
            "min_prob": ENGINE_MIN_PROB,
        },
        "mining_workload": {
            **MINING_WORKLOAD,
            "target_cells": MINING_TARGET_CELLS,
            "k": MINING_K,
        },
        "index_build": index_build,
        "candidate_eval": candidate_eval,
        "mining": mining,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds per measurement"
    )
    args = parser.parse_args()

    report = run(rounds=args.rounds)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    ib, ce, mi = report["index_build"], report["candidate_eval"], report["mining"]
    print(f"index build:    scalar {ib['scalar_s']:.3f}s  "
          f"vectorised {ib['vectorised_s']:.3f}s  ({ib['speedup']:.1f}x)")
    print(f"candidate eval: scalar {ce['scalar_candidates_per_s']:.0f}/s  "
          f"batched {ce['batched_candidates_per_s']:.0f}/s  ({ce['speedup']:.1f}x)")
    print(f"mining:         {mi['wall_time_s']:.3f}s wall, "
          f"{mi['candidates_evaluated']} candidates in {mi['eval_batches']} batches")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
