"""Kernel backend protocol: equivalence, precision modes, scratch arena.

The compiled backend's contract is *bit-exactness* with the numpy
reference on a shared index (the evaluation kernels perform the same
reduction in the same order); only the Prob kernel used during index
construction is allowed to differ (libm vs scipy ``erf``, tagged into the
cache key).  float32 mode is judged in float32 ULPs.  Tests that need the
compiled backend skip with the registry's own unavailability reason.
"""

from __future__ import annotations

import logging
from dataclasses import replace

import numpy as np
import pytest

from repro.core import index_cache, kernels
from repro.core.engine import EngineConfig, NMEngine, autotune_prob_chunk
from repro.core.pattern import TrajectoryPattern
from repro.core.wildcards import Gap, GapPattern, nm_gap_pattern

CELL = 0.03
BASE = dict(delta=CELL, min_prob=1e-6)


def _combos() -> list[tuple[str, str]]:
    out = [("numpy", "float64"), ("numpy", "float32")]
    if kernels.compiled_unavailable_reason() is None:
        out += [("compiled", "float64"), ("compiled", "float32")]
    return out


def _require_compiled() -> None:
    reason = kernels.compiled_unavailable_reason()
    if reason is not None:
        pytest.skip(f"compiled backend unavailable: {reason}")


def _engine(dataset, backend="numpy", dtype="float64", **kw) -> NMEngine:
    grid = dataset.make_grid(CELL)
    return NMEngine(
        dataset, grid, EngineConfig(backend=backend, dtype=dtype, **BASE, **kw)
    )


def _candidates(engine, n=40, seed=5) -> list[TrajectoryPattern]:
    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    return [
        TrajectoryPattern(
            tuple(int(c) for c in rng.choice(cells, size=rng.integers(1, 5)))
        )
        for _ in range(n)
    ]


def _gap_patterns(engine, n=8, seed=6) -> list[GapPattern]:
    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    out = []
    for _ in range(n):
        a = TrajectoryPattern(tuple(int(c) for c in rng.choice(cells, size=2)))
        b = TrajectoryPattern(tuple(int(c) for c in rng.choice(cells, size=1)))
        lo = int(rng.integers(0, 3))
        out.append(GapPattern((a, b), (Gap(lo, lo + int(rng.integers(0, 3))),)))
    return out


# -- protocol & resolution ----------------------------------------------------


def test_resolution_validation():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.resolve_backend("cuda")
    with pytest.raises(ValueError, match="unknown kernel dtype"):
        kernels.resolve_backend("numpy", "float16")
    with pytest.raises(ValueError, match="backend"):
        EngineConfig(delta=0.03, backend="cuda")
    with pytest.raises(ValueError, match="dtype"):
        EngineConfig(delta=0.03, dtype="float16")


def test_resolved_instances_satisfy_protocol():
    for backend, dtype in _combos():
        inst = kernels.resolve_backend(backend, dtype)
        assert isinstance(inst, kernels.KernelBackend)
        assert np.dtype(inst.dtype) == np.dtype(dtype)
        assert inst.name in ("numpy", "numba", "cnative")


def test_forced_none_disables_compiled(monkeypatch, caplog):
    monkeypatch.setenv("REPRO_KERNELS", "none")
    assert kernels.available_backends() == ["numpy"]
    assert "REPRO_KERNELS=none" in kernels.compiled_unavailable_reason()
    # Explicit "compiled" degrades to numpy with a structured warning...
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        inst = kernels.resolve_backend("compiled")
    assert inst.name == "numpy" and not inst.compiled
    assert any("falling back to numpy" in r.message for r in caplog.records)
    # ...while "auto" degrades silently.
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.kernels"):
        assert kernels.resolve_backend("auto").name == "numpy"
    assert not caplog.records
    summary = kernels.backend_summary(
        EngineConfig(delta=0.03, backend="compiled")
    )
    assert summary["resolved"] == "numpy"
    assert "fallback_reason" in summary


def test_prob_kernel_tag_default_is_ref():
    # The scipy-built index keeps its historical cache key: "ref" adds
    # nothing to the hash.
    cfg = EngineConfig(delta=0.03, backend="numpy")
    assert kernels.prob_kernel_tag(cfg) == "ref"


def test_cache_key_kernel_tag(small_dataset, unit_grid):
    cfg = EngineConfig(**BASE)
    base = index_cache.cache_key(small_dataset, unit_grid, cfg)
    assert index_cache.cache_key(
        small_dataset, unit_grid, cfg, kernel_tag="ref"
    ) == base
    tagged = index_cache.cache_key(
        small_dataset, unit_grid, cfg, kernel_tag="cnative"
    )
    assert tagged != base


# -- backend equivalence ------------------------------------------------------


def test_shared_index_bit_exact(small_dataset):
    """On one shared index every backend x dtype reduction is bit-identical."""
    ref = _engine(small_dataset)
    patterns = _candidates(ref)
    gaps = _gap_patterns(ref)
    nm_ref = ref.nm_batch(patterns)
    match_ref = ref.match_batch(patterns)
    windows_ref = ref.window_scores_batch(patterns[:6])
    gap_ref = np.array([nm_gap_pattern(ref, gp) for gp in gaps])

    for backend, dtype in _combos():
        eng = _engine(small_dataset, backend=backend, dtype=dtype)
        eng.install_index(ref._flat_cells, ref._flat_rows, ref._flat_vals)
        nm = eng.nm_batch(patterns)
        match = eng.match_batch(patterns)
        windows = eng.window_scores_batch(patterns[:6])
        gap = np.array([nm_gap_pattern(eng, gp) for gp in gaps])
        if dtype == "float64":
            assert np.array_equal(nm, nm_ref), (backend, dtype)
            assert np.array_equal(match, match_ref)
            for got, want in zip(windows, windows_ref):
                assert np.array_equal(got, want)
            assert np.array_equal(gap, gap_ref)
        else:
            # float32 paths: both sides rounded to f32 must stay within a
            # small ULP budget of the f64 reference.
            from repro.testkit.oracle import max_ulps32

            assert max_ulps32(nm, nm_ref) <= 1024
            assert max_ulps32(match, match_ref) <= 1024


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_compiled_own_index_close(small_dataset, dtype):
    """Compiled engines building their own index stay within tolerance.

    The erf difference (libm vs scipy, <= 2 ULPs per entry) propagates
    through window sums, so own-index results are close but not
    necessarily bit-identical.
    """
    _require_compiled()
    ref = _engine(small_dataset)
    eng = _engine(small_dataset, backend="compiled", dtype=dtype)
    assert eng.backend_name in ("numba", "cnative")
    assert eng.backend_dtype == dtype
    patterns = _candidates(ref)
    rtol = 1e-12 if dtype == "float64" else 1e-4
    np.testing.assert_allclose(
        eng.nm_batch(patterns), ref.nm_batch(patterns), rtol=rtol, atol=1e-12
    )
    np.testing.assert_allclose(
        eng.match_batch(patterns), ref.match_batch(patterns),
        rtol=rtol, atol=1e-12,
    )


def test_float32_outputs_are_float64(small_dataset):
    eng = _engine(small_dataset, dtype="float32")
    patterns = _candidates(eng, n=8)
    assert eng._flat_vals_k.dtype == np.float32
    assert eng._flat_vals.dtype == np.float64  # cache/build side stays f64
    assert eng.nm_batch(patterns).dtype == np.float64
    assert eng.match_batch(patterns).dtype == np.float64


# -- scratch arena ------------------------------------------------------------


@pytest.mark.parametrize("backend,dtype", _combos())
def test_steady_state_is_allocation_free(small_dataset, backend, dtype):
    eng = _engine(small_dataset, backend=backend, dtype=dtype)
    patterns = _candidates(eng)
    eng.nm_batch(patterns)  # warm the arena (and any lazy caches)
    eng.nm_batch(patterns)
    allocations = eng._arena.allocations
    requests = eng._arena.requests
    for _ in range(3):
        eng.nm_batch(patterns)
    assert eng._arena.allocations == allocations
    assert eng._arena.requests > requests


def test_arena_grows_geometrically():
    arena = kernels.ScratchArena()
    a = arena.get("buf", (100,))
    assert a.shape == (100,) and arena.allocations == 1
    b = arena.get("buf", (80,))  # smaller request reuses the same block
    assert arena.allocations == 1 and b.shape == (80,)
    c = arena.get("buf", (101,), zero=True)
    assert arena.allocations == 2 and not c.any()
    assert arena.nbytes() > 0


# -- prob chunking ------------------------------------------------------------


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_prob_chunk_size_is_bit_exact(small_dataset, dtype):
    """Chunked == unchunked index construction, 0 ULPs, both dtypes."""
    big = _engine(small_dataset, dtype=dtype)  # default 2^20: one chunk
    for chunk in (64, 1021):
        small = _engine(small_dataset, dtype=dtype, prob_chunk_size=chunk)
        assert small.n_index_entries == big.n_index_entries
        assert np.array_equal(small._flat_vals, big._flat_vals)
        assert np.array_equal(small._flat_vals_k, big._flat_vals_k)
        assert np.array_equal(small._flat_cells, big._flat_cells)
        assert np.array_equal(small._flat_rows, big._flat_rows)


def test_prob_chunk_validation():
    with pytest.raises(ValueError, match="prob_chunk_size"):
        EngineConfig(delta=0.03, prob_chunk_size=0)


def test_autotune_prob_chunk(small_dataset):
    grid = small_dataset.make_grid(CELL)
    cfg = EngineConfig(**BASE)
    best = autotune_prob_chunk(
        small_dataset, grid, cfg, candidates=(1 << 10, 1 << 14), rounds=1
    )
    assert best in (1 << 10, 1 << 14)
    # The knob is safe to apply blindly.
    NMEngine(small_dataset, grid, replace(cfg, prob_chunk_size=best))


# -- index replacement & cache invalidation ----------------------------------


def test_install_index_invalidates_caches(small_dataset):
    """A warmed engine given a new index must match a cold engine bit-exactly.

    Exercises the ``_segment_maxima`` / entry-bounds / column caches: all
    are populated by the first evaluation round and must not leak across
    ``install_index``.
    """
    warm = _engine(small_dataset)
    patterns = _candidates(warm)
    warm.match_batch(patterns)
    warm.nm_batch(patterns)
    warm_singular = warm.singular_nm_table()  # populates _seg_max
    assert warm._seg_max is not None

    # A genuinely different index over the same dataset/grid: half the
    # entries, rescaled values, handed over in shuffled order.
    half = warm._flat_cells.size // 2
    new_cells = warm._flat_cells[:half].copy()
    new_rows = warm._flat_rows[:half].copy()
    new_vals = warm._flat_vals[:half] * 0.75
    perm = np.random.default_rng(3).permutation(half)
    warm.install_index(new_cells[perm], new_rows[perm], new_vals[perm])
    assert warm._seg_max is None  # caches dropped with the old index

    cold = _engine(small_dataset)
    cold.install_index(new_cells, new_rows, new_vals)
    assert np.array_equal(warm.match_batch(patterns), cold.match_batch(patterns))
    assert np.array_equal(warm.nm_batch(patterns), cold.nm_batch(patterns))
    assert warm.singular_nm_table() == cold.singular_nm_table()
    assert warm.singular_nm_table() != warm_singular

    # Shrinking to an empty index must also reset every derived structure.
    warm.nm_batch(patterns)
    empty = np.empty(0, dtype=np.int64)
    warm.install_index(empty, empty, np.empty(0))
    assert warm.n_index_entries == 0
    floor = warm.nm_batch(patterns)
    assert np.all(np.isfinite(floor))


# -- edge cases ---------------------------------------------------------------


@pytest.mark.parametrize("backend", ["numpy", "compiled"])
def test_empty_inputs(small_dataset, backend):
    if backend == "compiled":
        _require_compiled()
    eng = _engine(small_dataset, backend=backend)
    assert eng.nm_batch([]).size == 0
    assert eng.match_batch([]).size == 0
    assert eng.window_scores_batch([]) == []

    # Pattern over cells absent from the index: finite floor, no crash.
    dead = TrajectoryPattern((eng.grid.n_cells - 1,) * 3)
    scores = eng.window_scores_batch([dead])[0]
    assert np.all(np.isfinite(scores))

    # Gap DP with an unsatisfiable span returns the per-position floor.
    n_ticks = len(small_dataset[0])
    seg = TrajectoryPattern(tuple(int(c) for c in eng.active_cells[:2]))
    too_long = GapPattern((seg, seg), (Gap(n_ticks, n_ticks + 5),))
    value = nm_gap_pattern(eng, too_long)
    assert np.isfinite(value)

    # Empty-index engine: every path still returns finite floors.
    empty = np.empty(0, dtype=np.int64)
    eng.install_index(empty, empty, np.empty(0))
    patterns = [seg, dead]
    assert np.all(np.isfinite(eng.nm_batch(patterns)))
    assert np.all(np.isfinite(eng.window_scores_batch(patterns)[0]))
    assert np.isfinite(nm_gap_pattern(eng, GapPattern((seg,), ())))


# -- composition --------------------------------------------------------------


def test_parallel_engine_reports_backend(small_dataset):
    from repro.core.parallel import ParallelNMEngine

    grid = small_dataset.make_grid(CELL)
    engine = ParallelNMEngine(
        small_dataset, grid, EngineConfig(**BASE, backend="auto"), jobs=2
    )
    try:
        assert engine.backend_name in ("numpy", "numba", "cnative")
        assert engine.backend_dtype == "float64"
        snap = engine.obs_snapshot()
        assert snap["backend"] == engine.backend_name
        assert snap["dtype"] == "float64"
        serial = _engine(small_dataset, backend="auto")
        patterns = _candidates(serial)
        np.testing.assert_allclose(
            engine.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
        )
    finally:
        engine.close()


def test_oracle_reports_kernel_paths(tmp_path):
    from repro.testkit.oracle import run_oracle

    report = run_oracle(
        17, quick=True, jobs_grid=(1, 2), include_serve=False,
        work_dir=tmp_path, backends="all",
    )
    assert report.ok
    names = {c.path for c in report.checks}
    # Either the compiled kernels ran or they were skipped *visibly*.
    assert any(n.startswith("kernel") for n in names)
    if kernels.compiled_unavailable_reason() is not None:
        skipped = [c for c in report.checks if c.skipped]
        assert skipped and all("kernel" in c.path for c in skipped)


def test_oracle_rejects_bad_backends(tmp_path):
    from repro.testkit.oracle import run_oracle

    with pytest.raises(ValueError, match="backends"):
        run_oracle(17, quick=True, work_dir=tmp_path, backends="some")
