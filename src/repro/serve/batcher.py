"""Adaptive micro-batching with admission control and load shedding.

The engine's batched evaluation (:meth:`~repro.core.engine.NMEngine.nm_batch`)
amortises a large fixed per-call cost over a whole candidate frontier -- but
online requests arrive one at a time.  :class:`MicroBatcher` recreates the
frontier at the serving layer (continuous-batching style): concurrent
requests land in one bounded queue and a single worker coroutine drains
them into batches, closing each batch on whichever comes first --

* **size**: ``max_batch`` items collected;
* **delay**: ``max_delay`` elapsed since the *lead* item was enqueued (a
  backlogged queue therefore closes batches back-to-back with zero added
  latency -- the delay bound only ever waits when the queue is empty);
* **boundary**: the next queued item has a different *key* (batches are
  homogeneous in key; the server keys by (snapshot, operation), which is
  what lets a hot snapshot swap proceed without mixing generations).

Overload protection happens at two points, both producing *explicit*
:class:`OverloadedError` results rather than unbounded queueing:

* **admission** -- a full queue sheds immediately (``queue_full``), and a
  request whose deadline cannot plausibly be met given the current queue
  depth and the EMA batch service time is shed up-front (``deadline``) --
  better to refuse in microseconds than to time out after the fact;
* **dispatch** -- items whose deadline expired while queued are dropped
  from the batch before evaluation (``deadline_expired``).

Everything runs on one event loop; the handler itself is ``async`` and
typically hops to a worker thread for the numpy-heavy evaluation, keeping
the loop responsive for admission decisions while a batch is in flight.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Hashable

from repro.obs import logs, metrics, tracing

_log = logs.get_logger("serve.batcher")

#: EMA smoothing for the batch service-time estimate used at admission.
_EMA_ALPHA = 0.2

#: Idle gap, in units of max(max_delay, ema), after which the service-time
#: estimate starts decaying.  An EMA learned under load says nothing about
#: an idle server (caches cool, but queues are empty), so after a gap the
#: estimate halves once per further grace period instead of shedding the
#: first request of a quiet morning against last night's rush hour.
_EMA_IDLE_GRACE = 10.0


class OverloadedError(Exception):
    """Explicit load-shed: the request was refused, not processed.

    ``reason`` is one of ``queue_full``, ``deadline``, ``deadline_expired``
    or ``shutdown``.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class BatchStats:
    """Counters exposed through the admin ``stats`` op."""

    batches: int = 0
    items: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    shed_expired: int = 0
    closed_size: int = 0
    closed_delay: int = 0
    closed_boundary: int = 0
    max_batch_size: int = 0
    ema_batch_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "items": self.items,
            "mean_batch_size": self.items / self.batches if self.batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "shed": {
                "queue_full": self.shed_queue_full,
                "deadline": self.shed_deadline,
                "deadline_expired": self.shed_expired,
            },
            "closed_on": {
                "size": self.closed_size,
                "delay": self.closed_delay,
                "boundary": self.closed_boundary,
            },
            "ema_batch_s": self.ema_batch_s,
        }


class _Item:
    __slots__ = ("key", "payload", "deadline", "enqueued", "future", "ctx", "ts_ns")

    def __init__(self, key, payload, deadline, enqueued, future, ctx, ts_ns) -> None:
        self.key = key
        self.payload = payload
        self.deadline = deadline
        self.enqueued = enqueued
        self.future = future
        # Trace context of the submitting request (None when tracing is
        # off) and the wall-clock enqueue time backing the after-the-fact
        # ``serve.queue`` span.
        self.ctx = ctx
        self.ts_ns = ts_ns


class MicroBatcher:
    """Coalesces awaitable submissions into handler calls (see module docs).

    Parameters
    ----------
    handler:
        ``async (key, payloads) -> results`` with ``len(results) ==
        len(payloads)``; called once per closed batch.  An exception fails
        every item of the batch with that exception.
    max_batch:
        Size bound per batch.
    max_delay:
        Seconds the lead item of a batch may wait for company.
    max_queue:
        Bound on queued (admitted, not yet dispatched) items; admission
        beyond it sheds.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        handler: Callable[[Hashable, list[Any]], Awaitable[list[Any]]],
        *,
        max_batch: int = 64,
        max_delay: float = 0.002,
        max_queue: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self._handler = handler
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_queue = max_queue
        self._clock = clock
        self._queue: deque[_Item] = deque()
        self._event = asyncio.Event()
        self._worker: asyncio.Task | None = None
        self._closed = False
        self._last_batch_done: float | None = None
        self.stats = BatchStats()
        #: Trace context of the batch currently in the handler (None
        #: outside a handler call or when the batch is untraced).  There
        #: is exactly one worker coroutine, so at most one batch is in
        #: flight; the server's eval path reads this to parent its
        #: ``serve.eval.*`` spans under the batch span.
        self.batch_context: tracing.SpanContext | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker coroutine (idempotent)."""
        if self._worker is None:
            self._closed = False
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name="micro-batcher"
            )

    async def close(self) -> None:
        """Stop the worker and shed everything still queued."""
        self._closed = True
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        while self._queue:
            item = self._queue.popleft()
            if not item.future.done():
                item.future.set_exception(OverloadedError("shutdown"))
        metrics.gauge("serve.queue_depth").set(0)

    # -- admission ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def estimated_wait_s(self) -> float:
        """Rough queueing delay a new submission would see right now."""
        if self.stats.ema_batch_s <= 0.0:
            return 0.0
        batches_ahead = len(self._queue) / self.max_batch + 1.0
        return self.stats.ema_batch_s * batches_ahead

    def _decay_stale_ema(self, now: float) -> None:
        """Halve the service-time EMA once per grace period of idleness.

        The EMA is only updated when batches complete, so after an idle gap
        it describes a load regime that no longer exists; left alone it
        would shed the first requests after the gap (the cold-start bug).
        Decay is applied lazily at admission time and the idle anchor is
        advanced, so a long gap decays once by the whole elapsed multiple
        rather than compounding per call.
        """
        ema = self.stats.ema_batch_s
        if ema <= 0.0 or self._last_batch_done is None:
            return
        grace = _EMA_IDLE_GRACE * max(self.max_delay, ema)
        idle = now - self._last_batch_done
        if idle <= grace:
            return
        self.stats.ema_batch_s = ema * 0.5 ** (idle / grace)
        self._last_batch_done = now

    async def submit(
        self,
        key: Hashable,
        payload: Any,
        deadline: float | None = None,
        ctx: tracing.SpanContext | None = None,
    ) -> Any:
        """Enqueue one payload and await its result.

        ``deadline`` is an absolute clock() time; raises
        :class:`OverloadedError` instead of queueing when the queue is full
        or the deadline is hopeless.  Predictive shedding only applies when
        work is actually queued: an empty queue admits any live deadline,
        because the estimate is the only evidence of overload and an
        estimate (however stale) is not a queue.

        ``ctx`` (the submitting request's span context; pass only when
        tracing is on) makes the item's queue wait and batch visible as
        child spans of that request.
        """
        if self._closed or self._worker is None:
            raise OverloadedError("shutdown")
        if len(self._queue) >= self.max_queue:
            self.stats.shed_queue_full += 1
            metrics.counter("serve.shed.queue_full").inc()
            raise OverloadedError("queue_full")
        now = self._clock()
        self._decay_stale_ema(now)
        if deadline is not None:
            hopeless = self._queue and now + self.estimated_wait_s() > deadline
            if deadline <= now or hopeless:
                self.stats.shed_deadline += 1
                metrics.counter("serve.shed.deadline").inc()
                raise OverloadedError("deadline")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        ts_ns = time.time_ns() if ctx is not None else 0
        self._queue.append(_Item(key, payload, deadline, now, future, ctx, ts_ns))
        metrics.gauge("serve.queue_depth").set(len(self._queue))
        self._event.set()
        return await future

    # -- the worker --------------------------------------------------------

    async def _next_item(self) -> _Item:
        while not self._queue:
            self._event.clear()
            await self._event.wait()
        return self._queue.popleft()

    async def _run(self) -> None:
        while True:
            batch: list[_Item] = []
            try:
                lead = await self._next_item()
                batch = [lead]
                close_on = "size"
                deadline_close = lead.enqueued + self.max_delay
                while len(batch) < self.max_batch:
                    if self._queue:
                        if self._queue[0].key != lead.key:
                            close_on = "boundary"
                            break
                        batch.append(self._queue.popleft())
                        continue
                    remaining = deadline_close - self._clock()
                    if remaining <= 0:
                        close_on = "delay"
                        break
                    self._event.clear()
                    try:
                        await asyncio.wait_for(self._event.wait(), remaining)
                    except asyncio.TimeoutError:
                        close_on = "delay"
                        break
                metrics.gauge("serve.queue_depth").set(len(self._queue))
                await self._dispatch(lead.key, batch, close_on)
            except asyncio.CancelledError:
                # close() cancelled the worker after it had popped items
                # off the queue but before their futures resolved: shed
                # them explicitly, or their submitters hang forever.
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(OverloadedError("shutdown"))
                raise

    def _emit_queue_span(self, item: _Item, now: float, shed: str | None) -> None:
        """Record an item's queue wait as an after-the-fact child span."""
        attrs = {"depth": len(self._queue)}
        if shed is not None:
            attrs["shed"] = shed
        tracing.record_span(
            "serve.queue",
            item.ctx,
            item.ts_ns,
            int((now - item.enqueued) * 1e9),
            attrs,
        )

    async def _dispatch(self, key, batch: list[_Item], close_on: str) -> None:
        now = self._clock()
        live: list[_Item] = []
        for item in batch:
            if item.future.cancelled():
                continue
            if item.deadline is not None and item.deadline <= now:
                self.stats.shed_expired += 1
                metrics.counter("serve.shed.deadline_expired").inc()
                if item.ctx is not None:
                    self._emit_queue_span(item, now, shed="deadline_expired")
                item.future.set_exception(OverloadedError("deadline_expired"))
                continue
            if item.ctx is not None:
                self._emit_queue_span(item, now, shed=None)
            live.append(item)
        if not live:
            return
        setattr(self.stats, f"closed_{close_on}", getattr(self.stats, f"closed_{close_on}") + 1)
        self.stats.batches += 1
        self.stats.items += len(live)
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(live))
        metrics.histogram("serve.batch_size").observe(len(live))
        metrics.counter(f"serve.batch.closed_{close_on}").inc()
        # The batch span is parented under the first traced item's request
        # span; the remaining items' requests still join the tree through
        # their own serve.queue spans and the shared trace file.
        lead_ctx = next((item.ctx for item in live if item.ctx is not None), None)
        batch_span = (
            tracing.begin(
                "serve.batch", ctx=lead_ctx, n_items=len(live), close_on=close_on
            )
            if lead_ctx is not None
            else tracing.NOOP_SPAN
        )
        self.batch_context = batch_span.context()
        t0 = self._clock()
        try:
            results = await self._handler(key, [item.payload for item in live])
        except asyncio.CancelledError:
            # close() cancelled the worker mid-handler: the batch's waiters
            # would otherwise hang forever on futures nobody resolves.
            for item in live:
                if not item.future.done():
                    item.future.set_exception(OverloadedError("shutdown"))
            raise
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            _log.warning(
                "batch handler failed",
                extra={"error": type(exc).__name__, "n_items": len(live)},
            )
            batch_span.finish(error=type(exc).__name__)
            for item in live:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            return
        finally:
            self.batch_context = None
        done = self._clock()
        batch_span.finish()
        elapsed = done - t0
        ema = self.stats.ema_batch_s
        self.stats.ema_batch_s = (
            elapsed if ema == 0.0 else (1 - _EMA_ALPHA) * ema + _EMA_ALPHA * elapsed
        )
        self._last_batch_done = done
        metrics.histogram("serve.batch.eval_ns", unit="ns").observe(elapsed * 1e9)
        if len(results) != len(live):  # pragma: no cover - handler contract
            error = RuntimeError("batch handler returned wrong result count")
            for item in live:
                if not item.future.cancelled():
                    item.future.set_exception(error)
            return
        for item, result in zip(live, results):
            if not item.future.cancelled():
                item.future.set_result(result)
