"""Hardening tests for ``repro report``: empty, merged and odd artifacts.

An empty trace file, a metrics-enabled-but-idle snapshot and a telemetry
series must all render something explicit instead of raising; malformed
records must still raise (CI strictness); several trace files must merge
into one tree.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.report import (
    load_trace,
    render_file,
    render_files,
    render_metrics_report,
    render_series_report,
    render_trace_report,
)
from repro.obs.tracing import FileSink


@pytest.fixture(autouse=True)
def _tracing_off():
    tracing.disable_tracing()
    yield
    tracing.disable_tracing()


class TestEmptyArtifacts:
    def test_zero_byte_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b"")
        assert load_trace(path) == []
        assert "no spans recorded" in render_file(path)

    def test_blank_lines_only(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n\n   \n")
        assert "no spans recorded" in render_file(path)

    def test_empty_metrics_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"counters": {}, "gauges": {}, "histograms": {}}))
        assert "no metrics recorded" in render_file(path)

    def test_bare_empty_object(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{}")
        assert "no metrics recorded" in render_file(path)

    def test_empty_span_list_renders(self):
        assert render_trace_report([]) == "trace: no spans recorded"
        assert "no records" in render_series_report([])


class TestStrictness:
    def test_malformed_line_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON|missing"):
            load_trace(path)

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="not a span record"):
            load_trace(path)

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span", "name": "x"}\n')
        with pytest.raises(ValueError, match="missing"):
            load_trace(path)

    def test_unrecognised_object_raises(self, tmp_path):
        path = tmp_path / "stuff.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="not a recognised"):
            render_file(path)


def _emit_trace(path, names, trace_id=None):
    """Write a small real trace via the tracing layer itself."""
    tracing.configure_tracing(sink=FileSink(path), trace_id=trace_id)
    tracer = tracing.get_tracer()
    for name in names:
        with tracer.span(name):
            pass
    tracing.disable_tracing()
    return tracer.trace_id


class TestMergedTraces:
    def test_two_files_one_tree(self, tmp_path):
        client = tmp_path / "client.jsonl"
        server = tmp_path / "server.jsonl"
        trace_id = _emit_trace(client, ["client.request"])
        _emit_trace(server, ["serve.score", "serve.batch"], trace_id=trace_id)
        out = render_files([str(client), str(server)])
        assert f"trace {trace_id}: 3 spans" in out
        for name in ("client.request", "serve.score", "serve.batch"):
            assert name in out

    def test_mixed_trace_ids_labelled(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        _emit_trace(a, ["x"])
        _emit_trace(b, ["y"])
        out = render_files([str(a), str(b)])
        assert "2 trace ids" in out

    def test_single_path_dispatches(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _emit_trace(path, ["phase"])
        assert render_files([str(path)]) == render_file(path)

    def test_span_tree_rendered_for_small_traces(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracing.configure_tracing(sink=FileSink(path))
        tracer = tracing.get_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracing.disable_tracing()
        out = render_file(path)
        assert "span tree:" in out
        # The child is indented one level deeper than its parent.
        tree = out.split("span tree:\n", 1)[1]
        lines = {line.lstrip().split("  ")[0]: len(line) - len(line.lstrip())
                 for line in tree.splitlines()}
        assert lines["inner"] == lines["outer"] + 2


class TestMetricsRendering:
    def test_populated_snapshot(self, tmp_path):
        snapshot = {
            "counters": {"requests": 5},
            "gauges": {"depth": 2.0},
            "histograms": {
                "lat": {"count": 3, "mean": 1.5, "unit": "ns",
                        "quantiles": {"p50": 1.0, "p95": 2.0, "p99": 2.0}}
            },
        }
        out = render_metrics_report(snapshot)
        assert "requests" in out and "depth" in out and "lat" in out
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        assert render_file(path) == out

    def test_snapshot_with_extra_sections(self, tmp_path):
        # `mine --metrics-out` appends e.g. kernel_backend to the snapshot.
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"counters": {"c": 1}, "kernel_backend": {}}))
        assert "c" in render_file(path)

    def test_telemetry_series_renders(self, tmp_path):
        record = {
            "kind": "telemetry", "seq": 1, "ts_unix": 0.0, "interval_s": 10.0,
            "counters": {"serve.score.requests":
                         {"value": 4, "delta": 4, "rate_per_s": 0.4}},
            "gauges": {},
            "histograms": {},
        }
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(record) + "\n" + json.dumps(
            {**record, "seq": 2, "ts_unix": 10.0}) + "\n")
        out = render_file(path)
        assert "telemetry series: 2 records" in out
        assert "serve.score.requests" in out
