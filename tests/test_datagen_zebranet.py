"""Tests for the ZebraNet-style herd generator and movement statistics."""

import numpy as np
import pytest

from repro.datagen.movement_stats import MovementStats
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZebraNetConfig(n_groups=0)
        with pytest.raises(ValueError):
            ZebraNetConfig(n_ticks=1)
        with pytest.raises(ValueError):
            ZebraNetConfig(extent=0.0)
        with pytest.raises(ValueError):
            ZebraNetConfig(p_leave=1.5)

    def test_n_trajectories(self):
        assert ZebraNetConfig(n_groups=3, zebras_per_group=4).n_trajectories == 12


class TestGenerator:
    @pytest.fixture
    def paths(self, rng):
        config = ZebraNetConfig(n_groups=4, zebras_per_group=5, n_ticks=80)
        return ZebraNetGenerator(config).generate_paths(rng)

    def test_shape(self, paths):
        assert len(paths) == 20
        assert all(p.positions.shape == (80, 2) for p in paths)

    def test_deterministic(self):
        config = ZebraNetConfig(n_groups=2, zebras_per_group=3, n_ticks=30)
        a = ZebraNetGenerator(config).generate_paths(np.random.default_rng(3))
        b = ZebraNetGenerator(config).generate_paths(np.random.default_rng(3))
        assert all(np.allclose(x.positions, y.positions) for x, y in zip(a, b))

    def test_group_members_move_together(self, paths):
        """Two zebras of one group stay far closer than zebras of
        different groups drift apart (group-shared steps)."""
        same = np.hypot(*(paths[0].positions - paths[1].positions).T)
        other = np.hypot(*(paths[0].positions - paths[6].positions).T)
        assert same.mean() < other.mean()

    def test_group_spread_stays_bounded_without_leaving(self, rng):
        config = ZebraNetConfig(
            n_groups=1, zebras_per_group=4, n_ticks=100, p_leave=0.0
        )
        paths = ZebraNetGenerator(config).generate_paths(rng)
        final_spread = np.std([p.positions[-1] for p in paths], axis=0).max()
        # Jitter is a random walk of scale 0.002 per tick => std ~ 0.02.
        assert final_spread < 0.1

    def test_leave_events_occur(self, rng):
        config = ZebraNetConfig(
            n_groups=2, zebras_per_group=10, n_ticks=200, p_leave=0.05
        )
        paths = ZebraNetGenerator(config).generate_paths(rng)
        assert any(p.label == "solo" for p in paths)

    def test_no_leaving_when_disabled(self, rng):
        config = ZebraNetConfig(n_groups=2, zebras_per_group=3, p_leave=0.0)
        paths = ZebraNetGenerator(config).generate_paths(rng)
        assert all(p.label.startswith("group-") for p in paths)


class TestMovementStats:
    def test_validation(self):
        with pytest.raises(ValueError):
            MovementStats(np.array([]), 0.1)
        with pytest.raises(ValueError):
            MovementStats(np.array([-0.1]), 0.1)
        with pytest.raises(ValueError):
            MovementStats(np.array([0.1]), -0.1)

    def test_zebra_like_reproducible(self):
        a = MovementStats.zebra_like()
        b = MovementStats.zebra_like()
        assert np.array_equal(a.step_lengths, b.step_lengths)
        assert a.turn_sigma == b.turn_sigma

    def test_zebra_like_is_heavy_tailed(self):
        stats = MovementStats.zebra_like()
        steps = stats.step_lengths
        assert np.median(steps) < steps.mean()  # right-skewed mixture

    def test_sample_distance_from_pool(self, rng):
        stats = MovementStats(np.array([0.1, 0.2]), 0.1)
        samples = stats.sample_distance(100, rng)
        assert set(np.round(samples, 6)) <= {0.1, 0.2}

    def test_next_heading_wraps(self, rng):
        stats = MovementStats(np.array([0.1]), turn_sigma=0.5)
        headings = stats.next_heading(np.full(1000, 6.2), rng)
        assert np.all((0 <= headings) & (headings < 2 * np.pi))

    def test_from_paths_roundtrip(self, rng):
        """Statistics extracted from generated herds resemble the source
        distribution (the paper's extraction step is self-consistent)."""
        source = MovementStats.zebra_like()
        config = ZebraNetConfig(
            n_groups=6, zebras_per_group=4, n_ticks=150, individual_jitter=0.0
        )
        paths = ZebraNetGenerator(config, stats=source).generate_paths(rng)
        extracted = MovementStats.from_paths(paths)
        assert extracted.mean_step == pytest.approx(source.mean_step, rel=0.25)

    def test_from_paths_requires_paths(self):
        with pytest.raises(ValueError):
            MovementStats.from_paths([])

    def test_from_paths_downsamples_pool(self, rng):
        config = ZebraNetConfig(n_groups=2, zebras_per_group=2, n_ticks=200)
        paths = ZebraNetGenerator(config).generate_paths(rng)
        stats = MovementStats.from_paths(paths, max_pool=50)
        assert len(stats.step_lengths) <= 50
