"""Tests for the PrefixSpan baseline (gapped subsequences, [8])."""

import itertools

import numpy as np
import pytest

from repro.baselines.prefixspan import PrefixSpan, top_k_prefixspan
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

GRID = Grid(BoundingBox.unit(), nx=3, ny=1)  # cells 0, 1, 2


def seq_dataset(*cell_sequences):
    """Trajectories whose most-likely cells spell the given sequences."""
    trajectories = []
    for cells in cell_sequences:
        means = GRID.cell_centers(list(cells)).copy()
        trajectories.append(UncertainTrajectory(means, 0.05))
    return TrajectoryDataset(trajectories)


def brute_force_supports(cell_sequences, max_length):
    """Exhaustive gapped-subsequence supports."""
    supports = {}
    for length in range(1, max_length + 1):
        for pattern in itertools.product(range(GRID.n_cells), repeat=length):
            count = 0
            for seq in cell_sequences:
                it = iter(seq)
                if all(item in it for item in pattern):
                    count += 1
            if count:
                supports[pattern] = count
    return supports


class TestValidation:
    def test_bad_parameters(self):
        ds = seq_dataset((0, 1))
        with pytest.raises(ValueError):
            PrefixSpan(ds, GRID, min_support=0)
        with pytest.raises(ValueError):
            PrefixSpan(ds, GRID, min_support=1, min_length=0)
        with pytest.raises(ValueError):
            PrefixSpan(ds, GRID, min_support=1, min_length=3, max_length=2)
        with pytest.raises(ValueError):
            top_k_prefixspan(ds, GRID, k=0)


class TestCorrectness:
    SEQUENCES = [
        (0, 1, 2, 1),
        (0, 2, 1, 1),
        (1, 0, 2),
        (2, 2, 1),
    ]

    @pytest.mark.parametrize("min_support", [1, 2, 3, 4])
    def test_matches_brute_force(self, min_support):
        ds = seq_dataset(*self.SEQUENCES)
        result = PrefixSpan(ds, GRID, min_support=min_support, max_length=4).mine()
        expected = {
            p: s
            for p, s in brute_force_supports(self.SEQUENCES, 4).items()
            if s >= min_support
        }
        got = {p.cells: s for p, s in result.as_pairs()}
        assert got == expected

    def test_gapped_occurrence_counted(self):
        """(0, 1) occurs in (0, 2, 1) despite the gap -- unlike the
        contiguous support miner."""
        from repro.baselines.support import SupportMiner

        ds = seq_dataset((0, 2, 1))
        gapped = PrefixSpan(ds, GRID, min_support=1, min_length=2).mine()
        assert (0, 1) in {p.cells for p in gapped.patterns}
        contiguous = SupportMiner(ds, GRID, k=50, min_length=2).mine()
        assert (0, 1) not in {p.cells for p in contiguous.patterns}

    def test_per_sequence_deduplication(self):
        ds = seq_dataset((0, 0, 0))
        result = PrefixSpan(ds, GRID, min_support=1).mine()
        supports = {p.cells: s for p, s in result.as_pairs()}
        assert supports[(0,)] == 1  # once per sequence, not per occurrence

    def test_sorted_by_support(self):
        ds = seq_dataset(*self.SEQUENCES)
        result = PrefixSpan(ds, GRID, min_support=1, max_length=3).mine()
        assert result.supports == sorted(result.supports, reverse=True)

    def test_stats(self):
        ds = seq_dataset(*self.SEQUENCES)
        result = PrefixSpan(ds, GRID, min_support=2, max_length=3).mine()
        assert result.stats.patterns_found == len(result)
        assert result.stats.projections >= len(result)


class TestTopK:
    def test_returns_k_best(self):
        ds = seq_dataset((0, 1, 2), (0, 1, 2), (0, 1, 0), (2, 2, 2))
        result = top_k_prefixspan(ds, GRID, k=3, max_length=3)
        assert len(result) == 3
        brute = brute_force_supports(
            [(0, 1, 2), (0, 1, 2), (0, 1, 0), (2, 2, 2)], 3
        )
        ranked = sorted(brute.items(), key=lambda kv: (-kv[1], len(kv[0]), kv[0]))
        assert [p.cells for p in result.patterns] == [c for c, _ in ranked[:3]]

    def test_fewer_patterns_than_k(self):
        ds = seq_dataset((0,))
        result = top_k_prefixspan(ds, GRID, k=10, max_length=2)
        assert len(result) <= 10
        assert len(result) >= 1
