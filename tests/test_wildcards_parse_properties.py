"""Property tests for gap-pattern parsing and span arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.wildcards import Gap, GapPattern

cells = st.integers(min_value=0, max_value=999)
segments = st.lists(
    st.lists(cells, min_size=1, max_size=3), min_size=1, max_size=3
)


@st.composite
def gap_patterns(draw):
    segs = draw(segments)
    gaps = []
    for _ in range(len(segs) - 1):
        lo = draw(st.integers(min_value=0, max_value=3))
        hi = lo + draw(st.integers(min_value=0, max_value=3))
        gaps.append((lo, hi))
    return segs, gaps


def to_text(segs, gaps):
    parts = [" ".join(map(str, segs[0]))]
    for (lo, hi), seg in zip(gaps, segs[1:]):
        parts.append(f"[{lo}-{hi}]")
        parts.append(" ".join(map(str, seg)))
    return " ".join(parts)


class TestParseProperties:
    @given(gap_patterns())
    def test_parse_round_trip(self, spec):
        segs, gaps = spec
        pattern = GapPattern.parse(to_text(segs, gaps))
        assert [list(s.cells) for s in pattern.segments] == segs
        assert [(g.min_length, g.max_length) for g in pattern.gaps] == gaps

    @given(gap_patterns())
    def test_span_arithmetic(self, spec):
        segs, gaps = spec
        pattern = GapPattern.parse(to_text(segs, gaps))
        n_solid = sum(len(s) for s in segs)
        assert pattern.n_specified == n_solid
        assert pattern.min_span() == n_solid + sum(lo for lo, _ in gaps)
        assert pattern.max_span() == n_solid + sum(hi for _, hi in gaps)
        assert pattern.min_span() <= pattern.max_span()

    @given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
    def test_gap_validation_property(self, a, b):
        lo, hi = min(a, b), max(a, b)
        gap = Gap(lo, hi)
        assert gap.min_length <= gap.max_length
