"""Integration tests: observability wired through the mining stack.

The contracts pinned here are the instrumentation layer's acceptance
criteria: a traced parallel mine produces a schema-valid JSONL trace in
which per-shard ``index.build`` / ``engine.nm_batch`` spans are children
of the parent run span; with observability disabled (the default) no
events are produced anywhere; run manifests are deterministic outside
their volatile sections; and the parallel obs snapshot exposes per-shard
counters plus the skew gauges.
"""

import json

import numpy as np
import pytest

import repro.cli as cli
from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.obs import manifest as obs_manifest
from repro.obs import metrics, report, tracing
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import save_dataset_jsonl
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture(autouse=True)
def _obs_default_off():
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()
    yield
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()


@pytest.fixture(scope="module")
def small_dataset():
    rng = np.random.default_rng(3)
    trajectories = [
        UncertainTrajectory(
            rng.uniform(0, 10, (8, 2)),
            rng.uniform(0.1, 0.4, 8),
            object_id=f"o{i}",
        )
        for i in range(10)
    ]
    return TrajectoryDataset(trajectories)


GRID = Grid(BoundingBox(0.0, 0.0, 10.0, 10.0), nx=5, ny=5)
CONFIG = EngineConfig(delta=1.0)


class TestTracedParallelMine:
    def test_worker_spans_nest_under_parent_run_span(
        self, small_dataset, tmp_path
    ):
        trace_file = tmp_path / "trace.jsonl"
        tracing.configure_tracing(path=trace_file)
        with tracing.span("run", command="test") as run_span:
            run_id = run_span.span_id
            with ParallelNMEngine(small_dataset, GRID, CONFIG, jobs=2) as eng:
                TrajPatternMiner(eng, k=3).mine()
        tracing.disable_tracing()

        spans = report.load_trace(trace_file)  # schema round-trip
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert {"run", "miner.mine", "index.build", "engine.nm_batch"} <= set(
            by_name
        )

        # Worker spans carry their shard ordinal and a worker pid, and are
        # parented to the span that was current at engine construction --
        # the run root -- so the whole mine renders as one tree.
        parent_pid = by_name["run"][0]["pid"]
        worker_spans = [
            s for s in spans if (s.get("attrs") or {}).get("shard") is not None
        ]
        assert {s["attrs"]["shard"] for s in worker_spans} == {0, 1}
        for span in worker_spans:
            assert span["pid"] != parent_pid
            assert span["parent"] == run_id
            assert span["trace"] == by_name["run"][0]["trace"]
        assert {s["name"] for s in worker_spans} >= {
            "index.build",
            "engine.nm_batch",
        }

        # miner spans nest: evaluate under iteration under mine under run.
        children = report.span_children(spans)
        mine_span = by_name["miner.mine"][0]
        assert mine_span["parent"] == run_id
        iteration_ids = {s["span"] for s in by_name["miner.iteration"]}
        assert all(
            s["parent"] in iteration_ids for s in by_name["miner.evaluate"]
        )
        assert children[run_id]  # run has children

    def test_report_renders_per_phase_table(self, small_dataset, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        tracing.configure_tracing(path=trace_file)
        with tracing.span("run"):
            with ParallelNMEngine(small_dataset, GRID, CONFIG, jobs=2) as eng:
                eng.nm_batch([])
        tracing.disable_tracing()
        rendered = report.render_file(trace_file)
        assert "index.build" in rendered
        assert "per-shard spans:" in rendered


class TestDisabledModeProducesNothing:
    def test_mining_emits_no_metrics_or_spans(self, small_dataset, tmp_path):
        registry = metrics.get_registry()
        assert not registry.enabled
        engine = NMEngine(small_dataset, GRID, CONFIG)
        result = TrajPatternMiner(engine, k=3).mine()
        assert list(metrics.instruments(registry)) == []
        assert tracing.get_tracer() is None
        # The stats thin view still works: its private registry is always on.
        assert result.stats.eval_batches > 0
        assert result.stats.max_batch_size > 0
        assert result.stats.eval_time_s > 0.0
        assert result.stats.eval_time_s < result.stats.wall_time_s

    def test_parallel_run_emits_nothing_when_disabled(self, small_dataset):
        registry = metrics.get_registry()
        with ParallelNMEngine(small_dataset, GRID, CONFIG, jobs=2) as eng:
            eng.nm_batch([])
            assert eng.drain_trace() == 0
        assert list(metrics.instruments(registry)) == []


class TestObsSnapshot:
    def test_per_shard_counters_and_skew_gauges(self, small_dataset):
        metrics.get_registry().enable()
        with ParallelNMEngine(small_dataset, GRID, CONFIG, jobs=2) as eng:
            serial = NMEngine(small_dataset, GRID, CONFIG)
            from repro.core.pattern import TrajectoryPattern

            patterns = [
                TrajectoryPattern((c,)) for c in serial.active_cells[:4]
            ]
            eng.nm_batch(patterns)
            snapshot = eng.obs_snapshot()

        assert snapshot["n_shards"] == 2
        assert len(snapshot["shards"]) == 2
        for ordinal, shard in enumerate(snapshot["shards"]):
            assert shard["shard"] == ordinal
            lo, hi = shard["trajectories"]
            assert hi > lo
            assert shard["n_entries"] > 0
            assert shard["n_evaluations"] == len(patterns)
            assert "counters" in shard["metrics"]
        assert snapshot["n_evaluations"] == 2 * len(patterns)
        assert snapshot["shard_skew"] >= 1.0
        assert snapshot["eval_skew"] == 1.0
        # The gauges land on the global registry too.
        snap = metrics.get_registry().snapshot()
        assert snap["gauges"]["parallel.shard_skew"] == snapshot["shard_skew"]


class TestCliObservability:
    @pytest.fixture
    def dataset_file(self, small_dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset_jsonl(small_dataset, path)
        return path

    def _mine(self, dataset_file, tmp_path, *extra):
        out = tmp_path / "patterns.json"
        code = cli.main(
            [
                "mine",
                str(dataset_file),
                "--output",
                str(out),
                "-k",
                "3",
                "--cell-size",
                "2.0",
                "--delta",
                "1.0",
                *extra,
            ]
        )
        assert code == 0
        return out

    def test_trace_metrics_manifest_outputs(
        self, dataset_file, tmp_path, capsys
    ):
        trace_file = tmp_path / "trace.jsonl"
        metrics_file = tmp_path / "metrics.json"
        out = self._mine(
            dataset_file,
            tmp_path,
            "--jobs",
            "2",
            "--trace-out",
            str(trace_file),
            "--metrics-out",
            str(metrics_file),
            "--manifest-out",
        )
        spans = report.load_trace(trace_file)
        names = {s["name"] for s in spans}
        assert {"run", "miner.mine", "index.build", "engine.nm_batch"} <= names
        assert any(
            (s.get("attrs") or {}).get("shard") is not None for s in spans
        )

        snapshot = json.loads(metrics_file.read_text())
        assert snapshot["counters"]["parallel.workers_started"] == 2
        assert snapshot["parallel"]["n_shards"] == 2

        manifest_path = tmp_path / "patterns.json.manifest.json"
        document = obs_manifest.load_manifest(manifest_path)
        assert document["command"] == "mine"
        assert document["config"]["jobs"] == 2
        assert document["runtime"]["wall_time_s"] > 0
        assert document["metrics"]["counters"]

        # `report` renders both artifact kinds.
        capsys.readouterr()
        assert cli.main(["report", str(trace_file)]) == 0
        assert "per-shard spans:" in capsys.readouterr().out
        assert cli.main(["report", str(manifest_path)]) == 0
        assert "run manifest: mine" in capsys.readouterr().out

    def test_manifest_deterministic_sections_stable(
        self, dataset_file, tmp_path
    ):
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        views = []
        for run_dir in (a_dir, b_dir):
            out = run_dir / "patterns.json"
            code = cli.main(
                [
                    "mine",
                    str(dataset_file),
                    "--output",
                    str(out),
                    "-k",
                    "3",
                    "--cell-size",
                    "2.0",
                    "--delta",
                    "1.0",
                    "--manifest-out",
                    str(run_dir / "m.json"),
                ]
            )
            assert code == 0
            document = obs_manifest.load_manifest(run_dir / "m.json")
            view = obs_manifest.deterministic_view(document)
            # The output path is the only argument that differs by design.
            view["arguments"].pop("output")
            view["arguments"].pop("manifest_out")
            views.append(view)
        assert views[0] == views[1]

    def test_obs_state_restored_after_command(self, dataset_file, tmp_path):
        self._mine(
            dataset_file,
            tmp_path,
            "--trace-out",
            str(tmp_path / "t.jsonl"),
            "--metrics-out",
            str(tmp_path / "m.json"),
        )
        assert tracing.get_tracer() is None
        assert not metrics.get_registry().enabled
