"""Tests for the uplink-loss sensitivity experiment (A4)."""

import pytest

from repro.datagen.bus import BusFleetConfig
from repro.experiments.loss_sensitivity import (
    LossSensitivityConfig,
    run_loss_sensitivity,
)

TINY = LossSensitivityConfig(
    loss_rates=(0.0, 0.3),
    fleet=BusFleetConfig(n_routes=2, buses_per_route=2, n_days=1, n_ticks=40),
)


@pytest.fixture(scope="module")
def result():
    return run_loss_sensitivity(TINY)


class TestLossSensitivity:
    def test_one_row_per_rate(self, result):
        assert [row.p_loss for row in result.rows] == [0.0, 0.3]

    def test_no_loss_means_no_lost_messages(self, result):
        assert result.rows[0].lost == 0

    def test_loss_forces_retries(self, result):
        """Lost uplinks leave the deviation above U, so attempts grow."""
        assert result.rows[1].lost > 0
        assert result.rows[1].attempts >= result.rows[0].attempts

    def test_loss_degrades_tracking(self, result):
        assert (
            result.rows[1].mean_tracking_error
            >= result.rows[0].mean_tracking_error
        )

    def test_render(self, result):
        text = result.render()
        assert "p_loss" in text and "mean err" in text
        assert text.count("\n") == len(result.rows) + 1
