"""The live ``ingest`` op and the snapshot lifecycle it leans on.

Three layers under test:

* **protocol**: every malformed report batch is a structured
  ``bad_request`` -- the server must never crash or fold garbage into the
  live index;
* **server**: a fed server republishes generation-keyed snapshots whose
  top-k equals a from-scratch mine of the same trajectories, exactly;
* **lifecycle** (the bugfixes): swapping store-backed snapshots closes
  their fd/mmap exactly once -- after the last in-flight admission drains
  -- and 50 republishes leave the process fd count flat.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.core.engine import NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import zebranet_dataset
from repro.mobility.reporting import trajectory_to_report
from repro.serve import (
    IngestConfig,
    PatternServer,
    ServeConfig,
    ServingSnapshot,
    SnapshotStore,
    protocol,
)
from repro.storage import write_store
from repro.trajectory.dataset import TrajectoryDataset


@pytest.fixture(scope="module")
def pool():
    return list(zebranet_dataset(n_trajectories=14, n_ticks=20, seed=29))


@pytest.fixture
def snapshot(pool):
    return ServingSnapshot.from_dataset(
        TrajectoryDataset(pool[:8]), version="v-ingest"
    )


class _Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host, port):
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        self.writer.write(protocol.encode(payload))
        await self.writer.drain()
        return protocol.decode_line(await self.reader.readline())

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


def _reports(trajectories):
    return [trajectory_to_report(t) for t in trajectories]


# -- protocol validation -----------------------------------------------------


class TestParseIngest:
    def test_valid_batch_round_trips(self, pool):
        reports = _reports(pool[:3])
        parsed = protocol.parse_ingest({"op": "ingest", "reports": reports})
        assert len(parsed) == 3
        np.testing.assert_array_equal(parsed[0].means, pool[0].means)
        np.testing.assert_array_equal(parsed[0].sigmas, pool[0].sigmas)
        assert parsed[0].object_id == pool[0].object_id

    def test_per_point_sigma_list_accepted(self, pool):
        report = trajectory_to_report(pool[0])
        report["sigma"] = [0.01 + 0.001 * i for i in range(len(report["points"]))]
        (parsed,) = protocol.parse_ingest({"op": "ingest", "reports": [report]})
        np.testing.assert_allclose(parsed.sigmas, report["sigma"])

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda r: r.pop("reports"),
            lambda r: r.update(reports=[]),
            lambda r: r.update(reports="not-a-list"),
            lambda r: r.update(reports=[42]),
            lambda r: r["reports"][0].pop("points"),
            lambda r: r["reports"][0].update(points=[]),
            lambda r: r["reports"][0].update(points=[[1.0]]),
            lambda r: r["reports"][0].update(points=[[1.0, "y"]]),
            lambda r: r["reports"][0].update(points=[[1.0, float("nan")]]),
            lambda r: r["reports"][0].update(points=[[1.0, float("inf")]]),
            lambda r: r["reports"][0].pop("sigma"),
            lambda r: r["reports"][0].update(sigma=0.0),
            lambda r: r["reports"][0].update(sigma=-0.5),
            lambda r: r["reports"][0].update(sigma=float("nan")),
            lambda r: r["reports"][0].update(sigma=True),
            lambda r: r["reports"][0].update(sigma=[0.1]),
            lambda r: r["reports"][0].update(object_id=17),
            lambda r: r["reports"][0].update(object_id="x" * 1000),
        ],
        ids=[
            "no-reports",
            "empty-reports",
            "reports-not-list",
            "report-not-object",
            "no-points",
            "empty-points",
            "point-1d",
            "point-non-numeric",
            "point-nan",
            "point-inf",
            "no-sigma",
            "sigma-zero",
            "sigma-negative",
            "sigma-nan",
            "sigma-bool",
            "sigma-list-wrong-length",
            "object-id-not-str",
            "object-id-too-long",
        ],
    )
    def test_malformed_batches_rejected(self, pool, mangle):
        request = {"op": "ingest", "reports": _reports(pool[:1])}
        mangle(request)
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_ingest(request)

    def test_oversized_batch_rejected(self, pool):
        report = trajectory_to_report(pool[0])
        request = {
            "op": "ingest",
            "reports": [report] * (protocol.MAX_REPORTS_PER_BATCH + 1),
        }
        with pytest.raises(protocol.ProtocolError, match="at most"):
            protocol.parse_ingest(request)


# -- server behaviour --------------------------------------------------------


class TestIngestOp:
    def test_ingest_disabled_is_forbidden(self, snapshot, pool):
        async def scenario():
            server = PatternServer(SnapshotStore(snapshot), ServeConfig())
            host, port = await server.start()
            client = await _Client.connect(host, port)
            response = await client.request(
                {"op": "ingest", "id": 1, "reports": _reports(pool[8:9])}
            )
            await client.close()
            await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["ok"] is False
        assert response["error"] == "forbidden"

    def test_malformed_ingest_never_crashes_the_server(self, snapshot):
        async def scenario():
            server = PatternServer(
                SnapshotStore(snapshot), ServeConfig(), ingest=IngestConfig()
            )
            host, port = await server.start()
            client = await _Client.connect(host, port)
            bad = await client.request(
                {"op": "ingest", "id": 1, "reports": [{"points": [], "sigma": 1}]}
            )
            # The connection and server survive: a follow-up op answers.
            health = await client.request({"op": "health", "id": 2})
            await client.close()
            await server.stop()
            return bad, health

        bad, health = asyncio.run(scenario())
        assert bad["ok"] is False and bad["error"] == "bad_request"
        assert health["ok"] is True

    def test_fold_republishes_exact_topk(self, snapshot, pool):
        config = IngestConfig(k=4, remine_every=1)

        async def scenario():
            store = SnapshotStore(snapshot)
            server = PatternServer(store, ServeConfig(), ingest=config)
            host, port = await server.start()
            client = await _Client.connect(host, port)
            first = await client.request(
                {"op": "ingest", "id": 1, "reports": _reports(pool[8:11])}
            )
            second = await client.request(
                {"op": "ingest", "id": 2, "reports": _reports(pool[11:14])}
            )
            stats = await client.request({"op": "stats", "id": 3})
            await client.close()
            await server.stop()
            return first, second, stats, store.current

        first, second, stats, current = asyncio.run(scenario())
        assert first["ok"] and first["republished"]
        assert first["generation"] == 1 and first["appended"] == 3
        assert second["generation"] == 2
        assert current.version == "v-ingest+g2"
        assert current.library is not None
        assert stats["stats"]["ingest"]["batches"] == 2

        # The republished top-k must equal a from-scratch mine, exactly.
        fresh = NMEngine(
            TrajectoryDataset(pool[:14]), snapshot.grid, snapshot.engine.config
        )
        expected = TrajPatternMiner(fresh, k=4).mine()
        got = [(tuple(e["cells"]), e["nm"]) for e in second["top_k"]]
        assert got == [(p.cells, nm) for p, nm in expected.as_pairs()]

    def test_remine_cadence_skips_intermediate_batches(self, snapshot, pool):
        config = IngestConfig(k=3, remine_every=2)

        async def scenario():
            store = SnapshotStore(snapshot)
            server = PatternServer(store, ServeConfig(), ingest=config)
            host, port = await server.start()
            client = await _Client.connect(host, port)
            first = await client.request(
                {"op": "ingest", "id": 1, "reports": _reports(pool[8:10])}
            )
            second = await client.request(
                {"op": "ingest", "id": 2, "reports": _reports(pool[10:12])}
            )
            await client.close()
            await server.stop()
            return first, second, store.current.version

        first, second, version = asyncio.run(scenario())
        assert first["ok"] and not first["republished"]
        assert "top_k" not in first
        assert second["republished"] and second["generation"] == 1
        assert version == "v-ingest+g1"

    def test_window_evicts_through_the_wire(self, snapshot, pool):
        config = IngestConfig(k=3, window=9)

        async def scenario():
            server = PatternServer(
                SnapshotStore(snapshot), ServeConfig(), ingest=config
            )
            host, port = await server.start()
            client = await _Client.connect(host, port)
            response = await client.request(
                {"op": "ingest", "id": 1, "reports": _reports(pool[8:12])}
            )
            await client.close()
            await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["appended"] == 4 and response["evicted"] == 3
        assert response["n_trajectories"] == 9


# -- snapshot lifecycle (the fd-leak and drain bugfixes) ---------------------


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


_NEEDS_PROCFS = pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc/self/fd"
)


class TestSnapshotLifecycle:
    @_NEEDS_PROCFS
    def test_fd_count_stable_across_50_store_swaps(self, pool, tmp_path):
        store_path = tmp_path / "dataset.tjc"
        write_store(TrajectoryDataset(pool[:6]), store_path)
        cache = tmp_path / "cache"
        boot = ServingSnapshot.load(store_path, cache_dir=cache)
        store = SnapshotStore(boot)
        # Warm-up swap so baseline and final states are alike (a cache-hit
        # loaded snapshot as current); the boot build touches different
        # lazy columns than warm loads do.
        store.swap(ServingSnapshot.load(store_path, cache_dir=cache))
        baseline = _fd_count()
        for _ in range(50):
            store.swap(ServingSnapshot.load(store_path, cache_dir=cache))
        assert not store.current.closed
        assert _fd_count() == baseline

    def test_swap_closes_store_backed_snapshot_once_drained(self, pool, tmp_path):
        store_path = tmp_path / "dataset.tjc"
        write_store(TrajectoryDataset(pool[:6]), store_path)
        old = ServingSnapshot.load(store_path)
        replacement = ServingSnapshot.from_dataset(
            TrajectoryDataset(pool[:4]), version="v-next"
        )
        store = SnapshotStore(old)

        pinned = store.acquire()
        assert pinned is old and old.inflight == 1
        store.swap(replacement)
        # An in-flight admission defers the close: the dataset stays readable.
        assert not old.closed
        assert len(old.dataset[0]) == len(pool[0])
        store.release(pinned)
        assert old.closed and old.inflight == 0

    def test_swap_with_no_inflight_closes_immediately(self, pool, tmp_path):
        store_path = tmp_path / "dataset.tjc"
        write_store(TrajectoryDataset(pool[:6]), store_path)
        old = ServingSnapshot.load(store_path)
        store = SnapshotStore(old)
        store.swap(ServingSnapshot.from_dataset(TrajectoryDataset(pool[:4])))
        assert old.closed

    def test_closed_store_backed_snapshot_refuses_admission(self, pool, tmp_path):
        store_path = tmp_path / "dataset.tjc"
        write_store(TrajectoryDataset(pool[:6]), store_path)
        old = ServingSnapshot.load(store_path)
        old.retire()
        assert old.closed
        with pytest.raises(RuntimeError, match="closed"):
            old.retain()

    def test_retired_in_memory_snapshot_stays_admittable(self, pool):
        snap = ServingSnapshot.from_dataset(TrajectoryDataset(pool[:4]))
        snap.retire()
        # No backing store to lose: a blue/green flip back must still work.
        snap.retain()
        snap.release()

    def test_release_without_retain_is_an_error(self, pool):
        snap = ServingSnapshot.from_dataset(TrajectoryDataset(pool[:4]))
        with pytest.raises(RuntimeError, match="without matching retain"):
            snap.release()
