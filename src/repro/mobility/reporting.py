"""The dead-reckoning reporting protocol (section 3.1).

Object and server share a motion model.  At every tick the object compares
its true position with the model's prediction; when the deviation exceeds
the tolerable uncertainty distance ``U`` it uplinks a report.  Each uplink
attempt is a **mis-prediction** -- the quantity Fig. 3 reduces.  Uplinks
may be lost with probability ``p_loss``; the paper compensates by choosing
the confidence constant ``c`` accordingly (e.g. ``c = 2`` for a 5% loss
rate).  We model an acknowledged uplink: the object knows whether its
report was delivered, so the object-side mirror of the model stays
consistent with the server's (a lost report leaves the deviation above
``U`` and the object retries on the next tick).

The server's estimate at every tick is the model prediction (corrected to
the reported position on delivery ticks), with standard deviation
``sigma = U / c`` -- exactly the ``(l_i, sigma_i)`` snapshots of
section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.models import MotionModel
from repro.mobility.objects import GroundTruthPath
from repro.trajectory.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import sigma_from_uncertainty


@dataclass(frozen=True)
class ReportingConfig:
    """Protocol parameters of section 3.1."""

    uncertainty: float  # the tolerable uncertainty distance U
    confidence_c: float = 2.0  # sigma = U / c
    p_loss: float = 0.0  # uplink loss probability

    def __post_init__(self) -> None:
        if self.uncertainty <= 0:
            raise ValueError("uncertainty distance U must be positive")
        if self.confidence_c <= 0:
            raise ValueError("confidence constant c must be positive")
        if not 0.0 <= self.p_loss < 1.0:
            raise ValueError("p_loss must be in [0, 1)")

    @property
    def sigma(self) -> float:
        """Snapshot standard deviation ``U / c``."""
        return sigma_from_uncertainty(self.uncertainty, self.confidence_c)


@dataclass
class TrackingLog:
    """Outcome of dead-reckoning one object over its ground-truth path."""

    estimates: np.ndarray  # server-side expected position per tick
    reported: np.ndarray  # bool per tick: uplink attempted
    delivered: np.ndarray  # bool per tick: uplink delivered
    config: ReportingConfig
    object_id: str = ""
    label: str = ""

    @property
    def n_mispredictions(self) -> int:
        """Number of uplink attempts (Fig. 3's metric)."""
        return int(self.reported.sum())

    @property
    def n_lost(self) -> int:
        """Number of uplinks lost in transit."""
        return int((self.reported & ~self.delivered).sum())

    def to_trajectory(self) -> UncertainTrajectory:
        """The server-side uncertain location trajectory (section 3.2)."""
        return UncertainTrajectory(
            self.estimates,
            self.config.sigma,
            object_id=self.object_id,
        )

    def to_interpolated_trajectory(self) -> UncertainTrajectory:
        """Offline view: delivered reports linearly interpolated onto ticks.

        This is the paper's mining preprocessing (section 6.1): "we only
        retain these readings that can not be predicted accurately ...
        align all trajectories on a set of snapshots".  For historical data
        the server can interpolate *between* reports, which tracks the true
        motion far better than the live dead-reckoned estimates (the future
        report is known).  Ticks after the last delivery fall back to the
        live estimates.
        """
        delivered_ticks = np.nonzero(self.delivered)[0]
        if len(delivered_ticks) < 2:
            return self.to_trajectory()
        means = self.estimates.copy()
        for left, right in zip(delivered_ticks[:-1], delivered_ticks[1:]):
            span = right - left
            if span > 1:
                w = np.arange(1, span)[:, None] / span
                means[left + 1 : right] = (
                    (1.0 - w) * self.estimates[left] + w * self.estimates[right]
                )
        return UncertainTrajectory(
            means, self.config.sigma, object_id=self.object_id
        )

    def to_report(self, interpolated: bool = False) -> dict:
        """The wire form of this log for a live server's ``ingest`` op.

        Exactly the report object :func:`repro.serve.protocol.parse_ingest`
        validates: ``{"object_id", "points", "sigma"}``, JSON-safe plain
        floats.  ``interpolated`` sends the offline mining view
        (:meth:`to_interpolated_trajectory`) instead of the live estimates.
        """
        trajectory = (
            self.to_interpolated_trajectory()
            if interpolated
            else self.to_trajectory()
        )
        return trajectory_to_report(trajectory)


def trajectory_to_report(trajectory: UncertainTrajectory) -> dict:
    """Serialise one uncertain trajectory as an ``ingest`` report object."""
    sigmas = np.asarray(trajectory.sigmas, dtype=float)
    sigma: float | list[float]
    if sigmas.ndim == 0 or np.all(sigmas == sigmas.flat[0]):
        sigma = float(sigmas.flat[0])
    else:
        sigma = [float(s) for s in sigmas]
    return {
        "object_id": trajectory.object_id,
        "points": [[float(x), float(y)] for x, y in trajectory.means],
        "sigma": sigma,
    }


def trajectory_from_report(report: dict) -> UncertainTrajectory:
    """Rebuild the uncertain trajectory a report object describes.

    The inverse of :func:`trajectory_to_report` for offline consumers
    (drivers replaying an NDJSON report log into a from-scratch mine); the
    live server goes through the stricter
    :func:`repro.serve.protocol.parse_ingest` instead.
    """
    sigma = report["sigma"]
    return UncertainTrajectory(
        np.asarray(report["points"], dtype=float),
        np.asarray(sigma, dtype=float) if isinstance(sigma, list) else float(sigma),
        object_id=str(report.get("object_id", "")),
    )


def dead_reckon(
    path: GroundTruthPath,
    model: MotionModel,
    config: ReportingConfig,
    rng: np.random.Generator | None = None,
    override_prediction=None,
) -> TrackingLog:
    """Run the reporting protocol for one object.

    Parameters
    ----------
    path:
        Ground-truth positions at unit ticks.
    model:
        A *fresh* motion model (shared logical state of object and server).
    config:
        Protocol parameters.
    rng:
        Randomness source for uplink loss; required when ``p_loss > 0``.
    override_prediction:
        Optional hook
        ``f(t, estimates_so_far, model, delivered_so_far) -> position | None``
        letting an application substitute its own prediction for the
        model's (the pattern-augmented predictor of Fig. 3 plugs in here).
        ``delivered_so_far`` is the boolean per-tick delivery history up to
        (excluding) ``t``.  Returning ``None`` keeps the model prediction.

    The first tick is always a report (the server knows nothing); it is not
    counted as a mis-prediction.
    """
    if config.p_loss > 0 and rng is None:
        raise ValueError("rng is required when p_loss > 0")

    n = len(path)
    estimates = np.empty((n, 2))
    reported = np.zeros(n, dtype=bool)
    delivered = np.zeros(n, dtype=bool)

    # Initial handshake: the first position is always delivered.
    model.observe(0.0, path.positions[0])
    estimates[0] = path.positions[0]
    delivered[0] = True

    for t in range(1, n):
        predicted = None
        if override_prediction is not None:
            predicted = override_prediction(t, estimates[:t], model, delivered[:t])
        if predicted is None:
            predicted = model.predict(float(t))
        predicted = np.asarray(predicted, dtype=float)
        true_pos = path.positions[t]
        deviation = float(np.hypot(*(true_pos - predicted)))
        if deviation > config.uncertainty:
            reported[t] = True
            lost = rng.random() < config.p_loss if config.p_loss > 0 else False
            if not lost:
                delivered[t] = True
                model.observe(float(t), true_pos)
                estimates[t] = true_pos
                continue
        estimates[t] = predicted

    return TrackingLog(
        estimates=estimates,
        reported=reported,
        delivered=delivered,
        config=config,
        object_id=path.object_id,
        label=path.label,
    )
