"""Fault-injection registry: deterministic crashes at named code points.

The scaling layers (sharded workers, the on-disk index cache, the serving
stack) have failure paths that ordinary tests never reach: a worker
SIGKILLed between exporting its index and releasing it, a cache file torn
mid-write, a client vanishing with requests in flight.  This module makes
those paths *reachable on purpose*: production code calls
:func:`fire` at a handful of named **injection points** (a no-op costing
one attribute read when nothing is armed), and the fault-injection tests
:func:`arm` a point with an action before driving the code under test.

Usage::

    from repro.testkit import faults

    with faults.injected("parallel.worker.op", action="exit",
                         match={"shard": 0, "op": "nm_batch"}):
        with pytest.raises(WorkerCrashError):
            engine.nm_batch(patterns)
    assert glob.glob("/dev/shm/repro-shm-*") == []

Actions
-------
``raise``
    Raise :class:`FaultInjected` (or a caller-supplied exception
    instance) out of the injection point -- an error the code under test
    is expected to handle or propagate cleanly.
``exit``
    ``os._exit(exit_code)`` -- a hard crash: no ``finally`` blocks, no
    ``atexit``, exactly what an OOM-kill or segfault looks like to the
    rest of the system.
``sigkill``
    ``SIGKILL`` the calling process -- indistinguishable from ``exit``
    for the victim, but exercises the signal path.
``callback``
    Call ``callback(point, ctx)``; the callback may mutate state, kill
    *another* process, truncate a file named in ``ctx``, or raise.

Targeting
---------
``count`` bounds how many times a fault fires (default once);
``match`` restricts firing to calls whose keyword context matches every
given key (e.g. only shard 0, only the ``nm_batch`` op).  Faults armed
before a ``fork`` are inherited by the child -- each process decrements
its own copy of ``count``, which is exactly what worker-crash tests
want.

The registry is process-global and thread-safe; :func:`disarm`
(or the :func:`injected` context manager) restores the no-op state.
Production code must only ever call :func:`fire` -- everything else is
test-side API.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "FaultInjected",
    "arm",
    "disarm",
    "active",
    "fire",
    "fired",
    "injected",
]


class FaultInjected(RuntimeError):
    """The error raised by an armed injection point with ``action='raise'``."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class _Fault:
    point: str
    action: str = "raise"
    count: int | None = 1  # None = fire every time
    match: dict[str, Any] | None = None
    exc: BaseException | None = None
    callback: Callable[[str, dict[str, Any]], None] | None = None
    exit_code: int = 17
    fired: int = field(default=0)


_ACTIONS = ("raise", "exit", "sigkill", "callback")

_lock = threading.Lock()
_faults: dict[str, _Fault] = {}
#: Fast-path flag: ``fire`` returns immediately when nothing is armed, so
#: the injection points cost one module-attribute read in production.
_armed = False


def arm(
    point: str,
    action: str = "raise",
    *,
    count: int | None = 1,
    match: dict[str, Any] | None = None,
    exc: BaseException | None = None,
    callback: Callable[[str, dict[str, Any]], None] | None = None,
    exit_code: int = 17,
) -> None:
    """Arm ``point`` with ``action``; replaces any fault already armed there."""
    global _armed
    if action not in _ACTIONS:
        raise ValueError(f"unknown fault action {action!r} (one of {_ACTIONS})")
    if action == "callback" and callback is None:
        raise ValueError("action='callback' requires a callback")
    if count is not None and count < 1:
        raise ValueError("count must be at least 1 (or None for unlimited)")
    with _lock:
        _faults[point] = _Fault(
            point,
            action,
            count=count,
            match=dict(match) if match else None,
            exc=exc,
            callback=callback,
            exit_code=exit_code,
        )
        _armed = True


def disarm(point: str | None = None) -> None:
    """Disarm ``point``, or every armed fault when ``point`` is ``None``."""
    global _armed
    with _lock:
        if point is None:
            _faults.clear()
        else:
            _faults.pop(point, None)
        _armed = bool(_faults)


def active() -> list[str]:
    """Names of the currently armed injection points, sorted."""
    with _lock:
        return sorted(_faults)


def fired(point: str) -> int:
    """How many times the fault armed at ``point`` has fired (0 if unarmed)."""
    with _lock:
        fault = _faults.get(point)
        return fault.fired if fault is not None else 0


def fire(point: str, **ctx: Any) -> None:
    """The injection point: no-op unless a matching fault is armed here.

    Called from production code with keyword context (shard ordinal, op
    name, file paths, ...) that ``match`` filters against and callbacks
    receive.  Never raises unless a fault is armed and selected.
    """
    if not _armed:
        return
    with _lock:
        fault = _faults.get(point)
        if fault is None:
            return
        if fault.match is not None and any(
            key not in ctx or ctx[key] != expected
            for key, expected in fault.match.items()
        ):
            return
        if fault.count is not None and fault.fired >= fault.count:
            return
        fault.fired += 1
        action, exc, callback, exit_code = (
            fault.action,
            fault.exc,
            fault.callback,
            fault.exit_code,
        )
    # Act outside the lock: callbacks may arm/disarm, and the hard-crash
    # actions never return at all.
    if action == "exit":
        os._exit(exit_code)
    if action == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "callback":
        callback(point, ctx)  # type: ignore[misc]  # arm() enforced non-None
        return
    raise exc if exc is not None else FaultInjected(point)


@contextmanager
def injected(point: str, action: str = "raise", **kwargs: Any) -> Iterator[None]:
    """Arm ``point`` for the duration of a ``with`` block, then disarm it."""
    arm(point, action, **kwargs)
    try:
        yield
    finally:
        disarm(point)
