"""A3: Prob geometry (box vs disk) and grid-size sensitivity (section 5).

The paper leaves the shape of the "within delta" region implicit; we default
to the axis-separable box and provide the exact Euclidean disk.  The
benchmark shows the cost difference and that the mined top-k barely moves.
The grid-size sweep quantifies the section 5 discussion: finer grids cost
more and refine the answer.
"""

import pytest

from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import make_engine, zebranet_dataset
from repro.uncertainty.gaussian import ProbModel


@pytest.fixture(scope="module")
def zebra_data():
    return zebranet_dataset(n_trajectories=25, n_ticks=40, sigma=0.01, seed=7)


@pytest.mark.parametrize("model", [ProbModel.BOX, ProbModel.DISK])
def test_bench_ablation_prob_model(benchmark, zebra_data, model):
    benchmark.group = "ablation-prob-model"

    def build_and_mine():
        engine = make_engine(
            zebra_data, cell_size=0.02, min_prob=1e-4, prob_model=model
        )
        return TrajPatternMiner(engine, k=10, max_length=4).mine()

    result = benchmark.pedantic(build_and_mine, rounds=1, iterations=1)
    assert len(result) == 10


def test_bench_ablation_prob_model_overlap(benchmark, zebra_data):
    def run_both():
        tops = {}
        for model in (ProbModel.BOX, ProbModel.DISK):
            engine = make_engine(
                zebra_data, cell_size=0.02, min_prob=1e-4, prob_model=model
            )
            result = TrajPatternMiner(engine, k=10, max_length=4).mine()
            tops[model] = {p.cells for p in result.patterns}
        return tops

    tops = benchmark.pedantic(run_both, rounds=1, iterations=1)
    union = tops[ProbModel.BOX] | tops[ProbModel.DISK]
    overlap = len(tops[ProbModel.BOX] & tops[ProbModel.DISK]) / len(union)
    # The tail of the top-k is full of near-ties (neighbouring cells score
    # almost identically), so box and disk may legitimately reorder it; a
    # material overlap is what the design note claims.
    assert overlap >= 0.3, f"box/disk top-k diverged: Jaccard {overlap:.2f}"


@pytest.mark.parametrize("cell_size", [0.04, 0.02, 0.01])
def test_bench_ablation_grid_size(benchmark, zebra_data, cell_size):
    """Section 5: finer grids cost more (the accuracy/cost trade-off)."""
    benchmark.group = "ablation-grid-size"

    def build_and_mine():
        engine = make_engine(zebra_data, cell_size=cell_size, min_prob=1e-4)
        return TrajPatternMiner(engine, k=10, max_length=4).mine()

    result = benchmark.pedantic(build_and_mine, rounds=1, iterations=1)
    assert len(result) == 10
