"""PrefixSpan [8] for discretised trajectory sequences.

The paper's related work anchors frequent sequential patterns on
PrefixSpan (Pei et al., ICDE 2001).  We include a faithful implementation
as the *gapped*-subsequence counterpart of the contiguous support miner:
a pattern occurs in a sequence when its cells appear in order, possibly
with other cells in between.  Like the support miner it operates on the
most-likely cell sequences (imprecision collapsed away), which is exactly
the modelling gap the paper's NM measure closes -- the test suite uses it
as the second classic-model reference point.

The algorithm is the standard prefix-projection recursion: for the current
prefix, project every sequence to its suffix after the prefix's first
occurrence, count item frequencies in the projections, and recurse on the
items that stay frequent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.support import discretize
from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset

Cells = tuple[int, ...]


@dataclass
class PrefixSpanStats:
    """Instrumentation of a PrefixSpan run."""

    projections: int = 0
    patterns_found: int = 0
    wall_time_s: float = 0.0


@dataclass
class PrefixSpanResult:
    """Frequent gapped patterns, support-descending."""

    patterns: list[TrajectoryPattern]
    supports: list[int]
    min_support: int
    stats: PrefixSpanStats

    def __len__(self) -> int:
        return len(self.patterns)

    def as_pairs(self) -> list[tuple[TrajectoryPattern, int]]:
        return list(zip(self.patterns, self.supports))


class PrefixSpan:
    """Frequent gapped-subsequence mining on discretised trajectories.

    Parameters
    ----------
    dataset, grid:
        Trajectories are collapsed to most-likely cell sequences over
        ``grid`` (the classic-model preprocessing).
    min_support:
        Minimum number of supporting sequences (absolute count).
    min_length, max_length:
        Pattern length bounds; ``max_length`` also caps the recursion
        depth, keeping dense datasets tractable.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        grid: Grid,
        min_support: int,
        min_length: int = 1,
        max_length: int = 8,
    ) -> None:
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.dataset = dataset
        self.grid = grid
        self.min_support = min_support
        self.min_length = min_length
        self.max_length = max_length

    def mine(self) -> PrefixSpanResult:
        """Run the prefix-projection recursion."""
        stats = PrefixSpanStats()
        t0 = time.perf_counter()
        sequences = discretize(self.dataset, self.grid)
        # A projection is (sequence index, start offset of the suffix).
        initial = [(i, 0) for i in range(len(sequences))]
        found: list[tuple[Cells, int]] = []
        self._grow((), initial, sequences, found, stats)
        stats.wall_time_s = time.perf_counter() - t0
        stats.patterns_found = len(found)

        found.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
        return PrefixSpanResult(
            patterns=[TrajectoryPattern(cells) for cells, _ in found],
            supports=[support for _, support in found],
            min_support=self.min_support,
            stats=stats,
        )

    # -- recursion ---------------------------------------------------------------

    def _grow(
        self,
        prefix: Cells,
        projections: list[tuple[int, int]],
        sequences: list[Cells],
        found: list[tuple[Cells, int]],
        stats: PrefixSpanStats,
    ) -> None:
        if len(prefix) >= self.max_length:
            return
        # First-occurrence position of each item in each projected suffix.
        first_position: dict[int, list[tuple[int, int]]] = {}
        for seq_index, start in projections:
            seen_here: set[int] = set()
            sequence = sequences[seq_index]
            for position in range(start, len(sequence)):
                item = sequence[position]
                if item not in seen_here:
                    seen_here.add(item)
                    first_position.setdefault(item, []).append(
                        (seq_index, position + 1)
                    )
        for item, item_projections in sorted(first_position.items()):
            support = len(item_projections)
            if support < self.min_support:
                continue
            stats.projections += 1
            extended = prefix + (item,)
            if len(extended) >= self.min_length:
                found.append((extended, support))
            self._grow(extended, item_projections, sequences, found, stats)


def top_k_prefixspan(
    dataset: TrajectoryDataset,
    grid: Grid,
    k: int,
    min_length: int = 1,
    max_length: int = 8,
) -> PrefixSpanResult:
    """Top-k by support: binary-search the largest min_support yielding >= k.

    PrefixSpan is threshold-based; the top-k wrapper finds the tightest
    threshold (fewest patterns to enumerate) that still produces ``k``
    qualifying patterns, then truncates deterministically.
    """
    if k < 1:
        raise ValueError("k must be positive")
    lo, hi = 1, len(dataset)
    best: PrefixSpanResult | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        result = PrefixSpan(
            dataset, grid, min_support=mid, min_length=min_length, max_length=max_length
        ).mine()
        if len(result) >= k:
            best = result
            lo = mid + 1
        else:
            hi = mid - 1
    if best is None:  # fewer than k patterns exist even at support 1
        best = PrefixSpan(
            dataset, grid, min_support=1, min_length=min_length, max_length=max_length
        ).mine()
    return PrefixSpanResult(
        patterns=best.patterns[:k],
        supports=best.supports[:k],
        min_support=best.min_support,
        stats=best.stats,
    )
