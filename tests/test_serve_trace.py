"""Wire trace propagation through the serving layer (real sockets).

A traced loadgen request must produce ONE span tree: the client's
``client.request`` span parents the server's ``serve.<op>`` request span,
which parents queue/batch/eval/respond children -- all sharing the
caller's trace id.  Untraced requests must not emit request spans into
the caller's trace, and malformed ``trace`` fields are a protocol error,
not a server crash.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.datasets import zebranet_dataset
from repro.obs import metrics, tracing
from repro.obs.tracing import BufferSink
from repro.serve import (
    PatternServer,
    ServeConfig,
    ServingSnapshot,
    SnapshotStore,
    protocol,
)
from repro.serve.loadgen import LoadgenConfig, run_loadgen


@pytest.fixture(scope="module")
def snapshot():
    dataset = zebranet_dataset(n_trajectories=12, n_ticks=25, seed=3)
    return ServingSnapshot.from_dataset(dataset, version="v-trace")


@pytest.fixture(autouse=True)
def _obs_reset():
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()
    yield
    tracing.disable_tracing()
    registry = metrics.get_registry()
    registry.disable()
    registry.reset()


async def _roundtrip(snapshot, requests, config=None):
    """Serve, send `requests` on one connection, collect the responses."""
    server = PatternServer(SnapshotStore(snapshot), config or ServeConfig())
    host, port = await server.start()
    try:
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        responses = []
        for request in requests:
            writer.write(protocol.encode(request))
            await writer.drain()
            responses.append(protocol.decode_line(await reader.readline()))
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    finally:
        await server.stop()
    return responses


def _by_id(records):
    return {r["span"]: r for r in records}


class TestWirePropagation:
    def test_joined_span_tree(self, snapshot):
        sink = BufferSink()
        tracing.configure_tracing(sink=sink)

        async def run():
            config = LoadgenConfig(
                host="127.0.0.1", requests=6, concurrency=2, op="score",
                trace=True,
            )
            server = PatternServer(SnapshotStore(snapshot), ServeConfig())
            host, port = await server.start()
            try:
                config.port = port
                return await run_loadgen(config)
            finally:
                await server.stop()

        report = asyncio.run(run())
        assert report["ok"] == 6
        trace_id = report["trace_id"]
        spans = [r for r in sink.records if r["trace"] == trace_id]
        by_name: dict[str, list] = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["loadgen.run"]) == 1
        assert len(by_name["client.request"]) == 6
        assert len(by_name["serve.score"]) == 6
        assert len(by_name["serve.queue"]) == 6
        assert by_name["serve.batch"] and by_name["serve.eval.score"]
        # One respond per traced request (the untraced describe request
        # responds under the server's own run span, same in-process trace).
        score_ids = {r["span"] for r in by_name["serve.score"]}
        responds = [
            r for r in by_name["serve.respond"] if r["parent"] in score_ids
        ]
        assert len(responds) == 6

        ids = _by_id(spans)
        # Chain: eval <- batch <- (a) score request <- client <- root.
        eval_span = by_name["serve.eval.score"][0]
        batch = ids[eval_span["parent"]]
        assert batch["name"] == "serve.batch"
        request_span = ids[batch["parent"]]
        assert request_span["name"] == "serve.score"
        client = ids[request_span["parent"]]
        assert client["name"] == "client.request"
        root = ids[client["parent"]]
        assert root["name"] == "loadgen.run"
        # Queue wait and respond are children of the request span.
        queue = by_name["serve.queue"][0]
        assert ids[queue["parent"]]["name"] == "serve.score"
        assert ids[responds[0]["parent"]]["name"] == "serve.score"

    def test_loadgen_report_records(self, snapshot):
        sink = BufferSink()
        tracing.configure_tracing(sink=sink)

        async def run():
            server = PatternServer(SnapshotStore(snapshot), ServeConfig())
            host, port = await server.start()
            try:
                return await run_loadgen(LoadgenConfig(
                    host=host, port=port, requests=4, concurrency=2,
                    op="score", trace=True,
                ))
            finally:
                await server.stop()

        report = asyncio.run(run())
        assert len(report["requests"]) == 4
        assert all(r["status"] == "ok" for r in report["requests"])
        assert all("span" in r for r in report["requests"])
        assert report["shed_reasons"] == {}
        assert report["degraded_reasons"] == {}

    def test_untraced_loadgen_has_no_trace_report(self, snapshot):
        async def run():
            server = PatternServer(SnapshotStore(snapshot), ServeConfig())
            host, port = await server.start()
            try:
                return await run_loadgen(LoadgenConfig(
                    host=host, port=port, requests=3, concurrency=1,
                ))
            finally:
                await server.stop()

        report = asyncio.run(run())
        assert "trace_id" not in report
        assert "requests" not in report

    def test_explicit_trace_field_adopted(self, snapshot):
        sink = BufferSink()
        tracing.configure_tracing(sink=sink)
        request = {
            "op": "stats", "id": 1,
            "trace": {"id": "cafecafecafecafe", "span": "abc.1"},
        }
        (response,) = asyncio.run(_roundtrip(snapshot, [request]))
        assert response["ok"]
        tracing.disable_tracing()
        adopted = [r for r in sink.records if r["trace"] == "cafecafecafecafe"]
        names = {r["name"] for r in adopted}
        assert "serve.stats" in names and "serve.respond" in names
        stats_span = next(r for r in adopted if r["name"] == "serve.stats")
        assert stats_span["parent"] == "abc.1"


class TestTraceValidation:
    @pytest.mark.parametrize(
        "trace",
        [
            "just-a-string",
            {"span": "no-id"},
            {"id": 42},
            {"id": ""},
            {"id": "x" * 200},
            {"id": "ok", "span": 9},
        ],
    )
    def test_malformed_trace_is_bad_request(self, snapshot, trace):
        request = {"op": "stats", "id": 7, "trace": trace}
        (response,) = asyncio.run(_roundtrip(snapshot, [request]))
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert response["id"] == 7

    def test_server_survives_after_bad_trace(self, snapshot):
        requests = [
            {"op": "stats", "id": 1, "trace": "broken"},
            {"op": "stats", "id": 2},
        ]
        responses = asyncio.run(_roundtrip(snapshot, requests))
        assert responses[0]["error"] == "bad_request"
        assert responses[1]["ok"] is True


class TestStatsLatency:
    def test_rolling_window_in_stats(self, snapshot):
        registry = metrics.get_registry()
        registry.reset()
        registry.enable()

        async def run():
            server = PatternServer(SnapshotStore(snapshot), ServeConfig())
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=protocol.MAX_LINE_BYTES
                )
                for i in range(3):
                    writer.write(protocol.encode({"op": "stats", "id": i}))
                    await writer.drain()
                    await reader.readline()
                writer.write(protocol.encode({"op": "stats", "id": 99}))
                await writer.drain()
                response = protocol.decode_line(await reader.readline())
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:
                    pass
                return response
            finally:
                await server.stop()

        response = asyncio.run(run())
        latency = response["stats"]["latency"]
        assert "stats" in latency
        entry = latency["stats"]
        assert entry["count"] >= 3
        assert set(entry["all_time_ms"]) == {"p50", "p95", "p99"}
        window = entry["window"]
        assert window["count"] >= 3
        assert window["window_s"] == 60.0
        assert set(window["quantiles_ms"]) == {"p50", "p95", "p99"}
        assert response["stats"]["rss_peak_bytes"] > 0

    def test_stats_without_metrics_has_empty_latency(self, snapshot):
        (response,) = asyncio.run(
            _roundtrip(snapshot, [{"op": "stats", "id": 1}])
        )
        assert response["stats"]["latency"] == {}
