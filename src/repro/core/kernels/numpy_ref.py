"""Reference numpy implementation of the kernel backend surface.

This is the exact vectorised code the engine ran before the backend split
(PR 6 moved it here body-for-body): the stable-sort + ``reduceat``
deviation reduction behind ``nm_batch``/``match_batch``, the stacked
window-score scatter, the per-segment maxima sweep, the chunked
``prob_within`` evaluation (delegated to
:mod:`repro.uncertainty.gaussian`) and the wildcard gap DP.  It remains
the differential oracle's ground truth: the compiled backends are tested
*against* this one, never the other way around.

Numerical contract (what the compiled backends must reproduce):

* Deviations are accumulated per ``(pattern, window)`` in gather order --
  pattern-major, then pattern offset ``j`` ascending, then index entries
  in (cell, row) order.  ``np.argsort(kind="stable")`` + ``np.add.reduceat``
  sum duplicates sequentially in exactly that order, so a compiled kernel
  that accumulates in the same order is bit-identical, not merely close.
* Maxima (``np.maximum.reduceat``) are order-independent.
* All kernel arithmetic runs in the backend dtype (float64 or float32);
  scalars are cast to the value dtype before entering the loops.
"""

from __future__ import annotations

import numpy as np

from repro.uncertainty import gaussian
from repro.uncertainty.gaussian import ProbModel

__all__ = ["NumpyKernels"]


def _offset_entries(cells_j, j, n_windows, start, count, rows, vals, floor):
    """Index entries touched at pattern offset ``j`` across a batch.

    ``cells_j[i]`` is pattern ``i``'s cell at position ``j``.  Returns
    ``(pattern_row, window_start, deviation)`` triples -- one per index
    entry of those cells whose shifted row lands on an in-range window
    start -- where ``deviation = value - floor > 0``.  Wildcards (and
    inactive cells) contribute nothing.  ``None`` when the offset touches
    no entries at all.
    """
    safe = np.where(cells_j >= 0, cells_j, 0)
    counts_j = np.where(cells_j >= 0, count[safe], 0)
    total = int(counts_j.sum())
    if total == 0:
        return None
    pat = np.repeat(np.arange(len(cells_j), dtype=np.int64), counts_j)
    firsts = np.cumsum(counts_j) - counts_j
    rank = np.arange(total, dtype=np.int64) - np.repeat(firsts, counts_j)
    flat_pos = np.repeat(start[safe], counts_j) + rank
    wrow = rows[flat_pos] - j
    keep = (wrow >= 0) & (wrow < n_windows)
    return pat[keep], wrow[keep], vals[flat_pos[keep]] - vals.dtype.type(floor)


class NumpyKernels:
    """The reference backend; one instance per value dtype."""

    compiled = False
    provider = "numpy"
    name = "numpy"
    #: Prob-kernel identity for the index-cache key.  "ref" marks the
    #: scipy ``erf`` path the cache format has always used, so default
    #: configurations keep their existing cache keys.
    prob_tag = "ref"

    def __init__(self, dtype: np.dtype | str = np.float64) -> None:
        self.dtype = np.dtype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumpyKernels(dtype={self.dtype})"

    # -- batched deviation maxima -----------------------------------------

    def batch_devmax(
        self,
        cells_matrix: np.ndarray,
        start: np.ndarray,
        count: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
        floor: float,
        valid: np.ndarray,
        n_windows: int,
        win_traj: np.ndarray,
        arena,
        out: np.ndarray,
    ) -> None:
        """Best per-``(pattern, trajectory)`` summed window deviation.

        ``out`` is ``(n_patterns, n_trajectories)`` and must be zero-filled
        on entry; untouched pairs stay zero (the all-floor baseline).  See
        :meth:`NMEngine._batch_deviation_maxima` for the calling context.
        """
        n_patterns, m = cells_matrix.shape
        flat_cells = cells_matrix.ravel()
        safe = np.where(flat_cells >= 0, flat_cells, 0)
        counts = np.where(flat_cells >= 0, count[safe], 0)
        total = int(counts.sum())
        if total == 0:
            return
        # One gather covering every (pattern, offset) slot of the group.
        owner = np.repeat(np.arange(n_patterns * m, dtype=np.int64), counts)
        firsts = np.cumsum(counts) - counts
        rank = np.arange(total, dtype=np.int64) - np.repeat(firsts, counts)
        flat_pos = np.repeat(start[safe], counts) + rank
        wrow = rows[flat_pos] - owner % m
        keep = (wrow >= 0) & (wrow < n_windows)
        wrow, owner, flat_pos = wrow[keep], owner[keep], flat_pos[keep]
        keep = valid[wrow]
        wrow, owner, flat_pos = wrow[keep], owner[keep], flat_pos[keep]
        if not len(wrow):
            return
        dev = vals[flat_pos] - vals.dtype.type(floor)
        key = (owner // m) * np.int64(n_windows) + wrow
        order = np.argsort(key, kind="stable")
        key, dev = key[order], dev[order]
        window_starts = np.concatenate([[0], np.nonzero(np.diff(key))[0] + 1])
        window_sums = np.add.reduceat(dev, window_starts)
        u_key = key[window_starts]
        u_pat = u_key // n_windows
        u_traj = win_traj[u_key % n_windows]
        # u_key is sorted, so (u_pat, u_traj) runs are contiguous.
        boundary = (
            np.nonzero((np.diff(u_pat) != 0) | (np.diff(u_traj) != 0))[0] + 1
        )
        seg = np.concatenate([[0], boundary])
        out[u_pat[seg], u_traj[seg]] = np.maximum.reduceat(window_sums, seg)

    # -- stacked window scores --------------------------------------------

    def stacked_scores(
        self,
        cells_matrix: np.ndarray,
        n_spec: np.ndarray,
        start: np.ndarray,
        count: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
        floor: float,
        n_windows: int,
        out: np.ndarray,
    ) -> None:
        """Unmasked window log-sums of equal-length patterns, into ``out``.

        Row ``i`` starts at pattern ``i``'s all-floor baseline and the
        sparse entry deviations are scattered on top, one shifted gather
        per position.
        """
        m = cells_matrix.shape[1]
        # Baselines are computed in float64 and cast on assignment, so the
        # float32 mode rounds the product once (matching the compiled path).
        out[:] = (floor * n_spec.astype(np.float64))[:, None]
        flat = out.ravel()
        for j in range(m):
            triples = _offset_entries(
                cells_matrix[:, j], j, n_windows, start, count, rows, vals, floor
            )
            if triples is None:
                continue
            pat, wrow, dev = triples
            # One offset yields at most one entry per (pattern, window), so
            # the fancy-indexed add has no duplicate targets.
            flat[pat * n_windows + wrow] += dev

    # -- segment maxima ----------------------------------------------------

    def segment_maxima(self, vals: np.ndarray, seg_starts: np.ndarray) -> np.ndarray:
        """Max stored entry of every (cell, trajectory) segment."""
        if not seg_starts.size:
            return np.empty(0, dtype=vals.dtype)
        return np.maximum.reduceat(vals, seg_starts)

    # -- Prob(l, sigma, p, delta) ------------------------------------------

    def prob_within(
        self,
        mean: np.ndarray,
        sigma: np.ndarray,
        center: np.ndarray,
        delta: float,
        model: ProbModel = ProbModel.BOX,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """The scipy-backed ``Prob`` evaluation (always float64)."""
        return gaussian.prob_within(mean, sigma, center, delta, model=model, out=out)

    # -- wildcard gap DP ---------------------------------------------------

    def gap_dp(
        self,
        seg_scores: list,
        seg_lens,
        gap_mins,
        gap_maxs,
        length: int,
        arena,
    ) -> float:
        """Best summed log-prob over admissible gap alignments (or ``-inf``).

        ``best[t]`` is the maximum summed log-probability of placing the
        segment prefix such that the current segment ends at snapshot ``t``
        (inclusive); transitions advance by the next segment's length plus
        an admissible gap.  The caller handles the too-short-trajectory
        floor and the ``n_specified`` normalisation.
        """
        n0 = seg_lens[0]
        best = np.full(length, -np.inf)
        best[n0 - 1 :] = seg_scores[0]
        for j in range(1, len(seg_lens)):
            n = seg_lens[j]
            nxt = np.full(length, -np.inf)
            # Segment j occupying [s, s + n - 1] requires the previous
            # segment to end at s - 1 - g for g in [min, max].
            for t in range(n - 1, length):
                s = t - n + 1
                lo = s - 1 - gap_maxs[j - 1]
                hi = s - 1 - gap_mins[j - 1]
                if hi < 0:
                    continue
                lo = max(lo, 0)
                prev_best = best[lo : hi + 1].max() if hi >= lo else -np.inf
                if prev_best == -np.inf:
                    continue
                nxt[t] = prev_best + seg_scores[j][s]
            best = nxt
        return float(best.max())
