"""Unit tests for the fault-injection registry itself.

The injection points in production code are only as trustworthy as the
registry's semantics: exact-once firing, context matching, clean disarm.
The process-killing actions (``exit``/``sigkill``) are exercised end to
end in ``test_parallel_faults.py`` where there is a worker process to
kill; here we cover everything that can be observed in-process.
"""

from __future__ import annotations

import pytest

from repro.testkit import faults


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


class TestFire:
    def test_noop_when_nothing_armed(self):
        faults.fire("some.point", shard=3)  # must not raise

    def test_noop_at_unarmed_point(self):
        faults.arm("other.point")
        faults.fire("some.point")

    def test_raises_fault_injected_once_by_default(self):
        faults.arm("p")
        with pytest.raises(faults.FaultInjected) as excinfo:
            faults.fire("p")
        assert excinfo.value.point == "p"
        faults.fire("p")  # count exhausted: no-op again
        assert faults.fired("p") == 1

    def test_count_bounds_firing(self):
        faults.arm("p", count=2)
        for _ in range(2):
            with pytest.raises(faults.FaultInjected):
                faults.fire("p")
        faults.fire("p")
        assert faults.fired("p") == 2

    def test_unlimited_count(self):
        faults.arm("p", count=None)
        for _ in range(5):
            with pytest.raises(faults.FaultInjected):
                faults.fire("p")
        assert faults.fired("p") == 5

    def test_custom_exception_instance(self):
        faults.arm("p", exc=TimeoutError("injected timeout"))
        with pytest.raises(TimeoutError, match="injected timeout"):
            faults.fire("p")


class TestMatching:
    def test_match_selects_by_context(self):
        faults.arm("p", match={"shard": 1})
        faults.fire("p", shard=0)  # wrong shard: no-op, count untouched
        assert faults.fired("p") == 0
        with pytest.raises(faults.FaultInjected):
            faults.fire("p", shard=1)

    def test_match_requires_every_key(self):
        faults.arm("p", match={"shard": 1, "op": "nm_batch"})
        faults.fire("p", shard=1)  # op missing from context
        faults.fire("p", shard=1, op="match_batch")
        assert faults.fired("p") == 0
        with pytest.raises(faults.FaultInjected):
            faults.fire("p", shard=1, op="nm_batch")


class TestCallback:
    def test_callback_receives_point_and_context(self):
        seen = []
        faults.arm("p", "callback", callback=lambda pt, ctx: seen.append((pt, ctx)))
        faults.fire("p", path="/tmp/x", n=3)
        assert seen == [("p", {"path": "/tmp/x", "n": 3})]

    def test_callback_may_raise(self):
        def boom(point, ctx):
            raise OSError("disk on fire")

        faults.arm("p", "callback", callback=boom)
        with pytest.raises(OSError, match="disk on fire"):
            faults.fire("p")

    def test_callback_action_requires_callback(self):
        with pytest.raises(ValueError, match="requires a callback"):
            faults.arm("p", "callback")


class TestLifecycle:
    def test_arm_replaces_existing_fault(self):
        faults.arm("p", count=1)
        with pytest.raises(faults.FaultInjected):
            faults.fire("p")
        faults.arm("p", count=1)  # re-arm resets the fired count
        with pytest.raises(faults.FaultInjected):
            faults.fire("p")

    def test_disarm_single_point(self):
        faults.arm("a")
        faults.arm("b")
        faults.disarm("a")
        assert faults.active() == ["b"]
        faults.fire("a")

    def test_disarm_all(self):
        faults.arm("a")
        faults.arm("b")
        faults.disarm()
        assert faults.active() == []

    def test_injected_context_manager_disarms_on_exit(self):
        with faults.injected("p", count=None):
            with pytest.raises(faults.FaultInjected):
                faults.fire("p")
        assert faults.active() == []
        faults.fire("p")

    def test_injected_disarms_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with faults.injected("p"):
                raise RuntimeError("boom")
        assert faults.active() == []

    def test_fired_of_unarmed_point_is_zero(self):
        assert faults.fired("nope") == 0


class TestValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            faults.arm("p", "explode")

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            faults.arm("p", count=0)
