"""Property tests for the span-merge functions (the failover bedrock).

The distributed coordinator re-dispatches a crashed pool's spans to
survivors and promises bit-identical results.  That promise rests on two
algebraic properties of the merge functions in :mod:`repro.core.parallel`:

* **placement invariance** (exact, any floats): the flat left-fold over
  span-ordered parts is a pure function of the parts -- computing spans
  in any order, on any worker, and folding by span index must reproduce
  the in-order fold bit for bit;
* **partition invariance** (exact on exactly-representable values): the
  merges implement plain sums with correct floor/base completion, so on
  integer-valued floats -- where fp addition really is associative --
  any partition of the trajectories into spans must give the identical
  result, and on arbitrary floats results across partitions stay within
  reassociation noise.

Hypothesis generates the per-trajectory contributions and the partitions.
"""

import math
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ExtensionTables
from repro.core.parallel import (
    merge_batch_sums,
    merge_extension_tables,
    merge_per_trajectory,
    merge_scalar_sums,
    merge_singular_tables,
)

# Per-trajectory contributions.  Integer-valued floats make fp addition
# exactly associative, which is what lets the partition-invariance tests
# demand bit equality; the arbitrary-float tests relax to ULP-noise.
_exact = st.integers(min_value=-(2**20), max_value=2**20).map(float)
_real = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _partitions(n: int, seed: int) -> list[list[tuple[int, int]]]:
    """A handful of random span partitions of ``range(n)``, plus extremes."""
    rng = random.Random(seed)
    parts = [[(0, n)], [(i, i + 1) for i in range(n)]]
    for _ in range(3):
        cuts = sorted(rng.sample(range(1, n), min(rng.randint(1, 3), n - 1)))
        bounds = [0, *cuts, n]
        parts.append(list(zip(bounds[:-1], bounds[1:])))
    return parts


class TestBatchSums:
    @given(
        rows=st.lists(
            st.lists(_real, min_size=3, max_size=3), min_size=2, max_size=12
        ),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_placement_invariance_any_floats(self, rows, seed):
        # Which worker computes a span (== arrival order) must not move a
        # bit: fold shuffled-computation results by span index and compare
        # against the straight in-order fold.
        data = np.asarray(rows)
        spans = _partitions(len(rows), seed)[-1]
        in_order = [data[lo:hi].sum(axis=0) for lo, hi in spans]
        shuffled_idx = list(range(len(spans)))
        random.Random(seed).shuffle(shuffled_idx)
        by_span: dict[int, np.ndarray] = {}
        for i in shuffled_idx:  # "survivor recomputes span i later"
            lo, hi = spans[i]
            by_span[i] = data[lo:hi].sum(axis=0)
        reassembled = [by_span[i] for i in range(len(spans))]
        lhs = merge_batch_sums(in_order)
        rhs = merge_batch_sums(reassembled)
        assert lhs.tobytes() == rhs.tobytes()

    @given(
        rows=st.lists(
            st.lists(_exact, min_size=2, max_size=2), min_size=2, max_size=12
        ),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_invariance_exact_values(self, rows, seed):
        data = np.asarray(rows)
        reference = data.sum(axis=0)
        for spans in _partitions(len(rows), seed):
            parts = [data[lo:hi].sum(axis=0) for lo, hi in spans]
            merged = merge_batch_sums(parts)
            assert merged.tobytes() == reference.tobytes(), spans

    @given(
        values=st.lists(_real, min_size=2, max_size=12),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitions_agree_within_reassociation_noise(self, values, seed):
        data = np.asarray([[v] for v in values])
        results = [
            merge_batch_sums([data[lo:hi].sum(axis=0) for lo, hi in spans])[0]
            for spans in _partitions(len(values), seed)
        ]
        scale = max(1.0, max(abs(v) for v in values)) * len(values)
        for r in results[1:]:
            assert math.isclose(r, results[0], rel_tol=0, abs_tol=scale * 1e-12)


class TestPerTrajectoryAndScalars:
    @given(
        values=st.lists(_real, min_size=2, max_size=20),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_concat_recovers_dataset_order_exactly(self, values, seed):
        data = np.asarray(values)
        for spans in _partitions(len(values), seed):
            merged = merge_per_trajectory([data[lo:hi] for lo, hi in spans])
            assert merged.tobytes() == data.tobytes()

    @given(
        values=st.lists(_exact, min_size=2, max_size=20),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_scalar_fold_partition_invariant_on_exact_values(self, values, seed):
        reference = merge_scalar_sums(values)
        for spans in _partitions(len(values), seed):
            parts = [merge_scalar_sums(values[lo:hi]) for lo, hi in spans]
            assert merge_scalar_sums(parts) == reference


def _span_singular_table(
    contributions: list[dict[int, float]], lo: int, hi: int, floor: float
) -> dict[int, float]:
    """What a span reports: every cell active *somewhere in the span*,
    summed over all span trajectories with the floor standing in for the
    trajectories that lack the cell -- exactly the engine's own per-span
    accounting."""
    rows = contributions[lo:hi]
    active = {cell for row in rows for cell in row}
    return {
        cell: sum(row.get(cell, floor) for row in rows) for cell in active
    }


class TestSingularTables:
    @given(
        contributions=st.lists(
            st.dictionaries(st.integers(0, 6), _exact, min_size=1, max_size=4),
            min_size=2,
            max_size=10,
        ),
        floor=_exact,
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_floor_completion_partition_invariant(self, contributions, floor, seed):
        # Direct full-dataset accounting: a trajectory without the cell
        # contributes the floor once.
        n = len(contributions)
        cells = {c for row in contributions for c in row}
        reference = {
            cell: sum(row.get(cell, floor) for row in contributions)
            for cell in cells
        }
        for spans in _partitions(n, seed):
            tables = [
                _span_singular_table(contributions, lo, hi, floor)
                for lo, hi in spans
            ]
            sizes = [hi - lo for lo, hi in spans]
            merged = merge_singular_tables(tables, sizes, floor, n)
            assert merged == reference, spans


class TestExtensionTables:
    @given(
        contributions=st.lists(
            st.dictionaries(st.integers(0, 6), _exact, min_size=0, max_size=4),
            min_size=2,
            max_size=10,
        ),
        nm_floor=_exact,
        match_floor=_exact,
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_base_completion_partition_invariant(
        self, contributions, nm_floor, match_floor, seed
    ):
        # Each trajectory contributes its table value for active cells and
        # the floor otherwise; match mirrors nm with a different floor.
        n = len(contributions)
        cells = {c for row in contributions for c in row}
        nm_ref = {
            cell: sum(row.get(cell, nm_floor) for row in contributions)
            for cell in cells
        }
        match_ref = {
            cell: sum(2.0 * row.get(cell, match_floor / 2.0) for row in contributions)
            for cell in cells
        }
        for spans in _partitions(n, seed):
            span_tables = []
            for lo, hi in spans:
                rows = contributions[lo:hi]
                active = {c for row in rows for c in row}
                span_tables.append(
                    ExtensionTables(
                        nm_by_cell={
                            c: sum(row.get(c, nm_floor) for row in rows)
                            for c in active
                        },
                        match_by_cell={
                            c: sum(
                                2.0 * row.get(c, match_floor / 2.0) for row in rows
                            )
                            for c in active
                        },
                        nm_base_total=nm_floor * len(rows),
                        match_base_total=match_floor * len(rows),
                    )
                )
            nm_merged, match_merged = merge_extension_tables(span_tables)
            assert nm_merged == nm_ref, spans
            assert match_merged == match_ref, spans
