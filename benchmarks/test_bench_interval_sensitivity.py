"""A5: mining cost/quality vs the snapshot interval (section 5 discussion).

Coarser snapshots shrink the data and the mining time; the benchmark
records the trade-off curve and asserts the cost direction.
"""

import pytest

from repro.experiments.interval_sensitivity import (
    IntervalSensitivityConfig,
    run_interval_sensitivity,
)

CONFIG = IntervalSensitivityConfig(
    factors=(1, 2, 4), k=10, n_trajectories=30, n_ticks=80
)


def test_bench_interval_sensitivity(benchmark):
    result = benchmark.pedantic(
        lambda: run_interval_sensitivity(CONFIG), rounds=1, iterations=1
    )
    rows = result.rows
    assert [r.factor for r in rows] == [1, 2, 4]
    # Decimation shrinks the data proportionally...
    assert rows[1].snapshots < rows[0].snapshots
    # ...and the coarsest interval mines faster than the finest.
    assert rows[-1].wall_time_s < rows[0].wall_time_s * 1.5
