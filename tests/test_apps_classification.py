"""Tests for the pattern-based trajectory classifier."""

import numpy as np
import pytest

from repro.apps.classification import PatternClassifier
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def corridor(y, n=8, jitter=0.01, seed=0, sigma=0.04):
    """A left-to-right trajectory along the horizontal line at height y."""
    rng = np.random.default_rng(seed)
    xs = 0.1 + 0.1 * np.arange(n) + rng.normal(0, jitter, n)
    ys = np.full(n, y) + rng.normal(0, jitter, n)
    return UncertainTrajectory(np.column_stack([xs, ys]), sigma)


@pytest.fixture
def labelled_data():
    lows = [corridor(0.25, seed=i) for i in range(6)]
    highs = [corridor(0.75, seed=100 + i) for i in range(6)]
    dataset = TrajectoryDataset(lows + highs)
    labels = ["low"] * 6 + ["high"] * 6
    return dataset, labels


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            PatternClassifier(cell_size=0.0)
        with pytest.raises(ValueError):
            PatternClassifier(cell_size=0.1, k=0)

    def test_fit_label_mismatch(self, labelled_data):
        dataset, labels = labelled_data
        with pytest.raises(ValueError, match="labels"):
            PatternClassifier(cell_size=0.1).fit(dataset, labels[:-1])

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            PatternClassifier(cell_size=0.1).fit(TrajectoryDataset([]), [])

    def test_predict_before_fit(self, labelled_data):
        dataset, _ = labelled_data
        with pytest.raises(RuntimeError):
            PatternClassifier(cell_size=0.1).predict(dataset[0])


class TestClassification:
    def test_classes_in_training_order(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        assert clf.classes == ["low", "high"]

    def test_separable_classes_perfectly_classified(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        test_low = corridor(0.25, seed=999)
        test_high = corridor(0.75, seed=998)
        assert clf.predict(test_low) == "low"
        assert clf.predict(test_high) == "high"

    def test_scores_ordered_correctly(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        scores = clf.score(corridor(0.25, seed=7))
        assert scores["low"] > scores["high"]

    def test_training_accuracy(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        assert clf.accuracy(dataset, labels) == 1.0

    def test_accuracy_validation(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        with pytest.raises(ValueError):
            clf.accuracy(dataset, labels[:-1])
        with pytest.raises(ValueError):
            clf.accuracy(TrajectoryDataset([]), [])

    def test_robust_to_observation_noise(self, labelled_data):
        dataset, labels = labelled_data
        clf = PatternClassifier(cell_size=0.08, k=5).fit(dataset, labels)
        noisy = corridor(0.25, seed=5, jitter=0.04, sigma=0.08)
        assert clf.predict(noisy) == "low"
