"""Tests of the engine's batched evaluation and vectorised index build.

The batched paths (``nm_batch`` / ``match_batch`` / ``window_scores_batch``
/ ``extend_right_tables_many``) are pure rearrangements of the scalar
arithmetic, so they must agree with the scalar methods to floating-point
accuracy -- including wildcards, length-1 patterns and mixed-length
batches.  Likewise the vectorised index construction must produce exactly
the same (cell, row, value) triples as the reference per-snapshot loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, NMEngine, build_engine
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def _random_patterns(rng, cells, n=24, max_length=5, wildcard_rate=0.3):
    """Random mixed-length patterns, some with wildcard positions."""
    patterns = []
    for _ in range(n):
        length = int(rng.integers(1, max_length + 1))
        chosen = [int(c) for c in rng.choice(cells, size=length)]
        if length > 1 and rng.random() < wildcard_rate:
            chosen[int(rng.integers(0, length))] = WILDCARD
        patterns.append(TrajectoryPattern(tuple(chosen)))
    return patterns


class TestBatchEqualsScalar:
    def test_random_mixed_batch(self, small_engine, rng):
        patterns = _random_patterns(rng, small_engine.active_cells)
        nm_batch = small_engine.nm_batch(patterns)
        match_batch = small_engine.match_batch(patterns)
        for i, pattern in enumerate(patterns):
            assert nm_batch[i] == pytest.approx(small_engine.nm(pattern), abs=1e-9)
            assert match_batch[i] == pytest.approx(
                small_engine.match(pattern), rel=1e-9, abs=1e-300
            )

    def test_singular_and_wildcard_only(self, small_engine):
        cells = small_engine.active_cells
        patterns = [
            TrajectoryPattern((cells[0],)),
            TrajectoryPattern((WILDCARD, WILDCARD)),
            TrajectoryPattern((cells[1], WILDCARD, cells[2])),
        ]
        got = small_engine.nm_batch(patterns)
        for i, pattern in enumerate(patterns):
            assert got[i] == pytest.approx(small_engine.nm(pattern), abs=1e-9)

    def test_empty_batch(self, small_engine):
        assert small_engine.nm_batch([]).shape == (0,)
        assert small_engine.match_batch([]).shape == (0,)

    def test_nm_many_routes_through_batch(self, small_engine, rng):
        patterns = _random_patterns(rng, small_engine.active_cells, n=6)
        before = small_engine.n_batches
        values = small_engine.nm_many(patterns)
        assert small_engine.n_batches > before
        assert values == pytest.approx(
            [small_engine.nm(p) for p in patterns], abs=1e-9
        )

    def test_patterns_longer_than_all_trajectories(self, rng):
        trajs = [
            UncertainTrajectory(rng.normal(0.5, 0.05, (n, 2)), 0.05)
            for n in (2, 3, 4)
        ]
        engine = build_engine(
            TrajectoryDataset(trajs), cell_size=0.05, min_prob=1e-5
        )
        cells = engine.active_cells
        long = TrajectoryPattern(tuple(int(c) for c in rng.choice(cells, size=9)))
        wild_long = TrajectoryPattern((WILDCARD,) * 8 + (int(cells[0]),))
        batch = [long, wild_long, TrajectoryPattern((int(cells[0]),))]
        nm = engine.nm_batch(batch)
        match = engine.match_batch(batch)
        for i, pattern in enumerate(batch):
            assert nm[i] == pytest.approx(engine.nm(pattern), abs=1e-9)
            assert match[i] == pytest.approx(
                engine.match(pattern), rel=1e-9, abs=1e-300
            )

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-1, 24), min_size=1, max_size=4), min_size=1, max_size=8
        ),
        st.integers(0, 10_000),
    )
    def test_property_batch_equals_scalar(self, raw_patterns, seed):
        rng = np.random.default_rng(seed)
        trajs = [
            UncertainTrajectory(
                np.cumsum(rng.normal(0.02, 0.01, (rng.integers(2, 9), 2)), axis=0)
                + rng.uniform(0, 0.3, 2),
                rng.uniform(0.02, 0.08),
            )
            for _ in range(3)
        ]
        dataset = TrajectoryDataset(trajs)
        grid = Grid(BoundingBox(-0.5, -0.5, 1.0, 1.0), nx=5, ny=5)
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.1, min_prob=1e-5))
        patterns = [
            TrajectoryPattern(
                tuple(c if c == WILDCARD else c % grid.n_cells for c in cells)
            )
            for cells in raw_patterns
        ]
        nm_batch = engine.nm_batch(patterns)
        match_batch = engine.match_batch(patterns)
        for i, pattern in enumerate(patterns):
            assert nm_batch[i] == pytest.approx(engine.nm(pattern), abs=1e-9)
            assert match_batch[i] == pytest.approx(
                engine.match(pattern), rel=1e-9, abs=1e-300
            )


class TestWindowScoresBatch:
    def test_matches_single_pattern_scores(self, small_engine, rng):
        patterns = _random_patterns(
            rng, small_engine.active_cells, n=8, wildcard_rate=0.0
        )
        batched = small_engine.window_scores_batch(patterns)
        for pattern, scores in zip(patterns, batched):
            expected, _, _ = small_engine._window_scores(pattern)
            n_windows = small_engine._total_rows - len(pattern) + 1
            valid, _, _ = small_engine._window_plumbing(len(pattern))
            # window_scores_batch is unmasked; compare on valid windows.
            assert scores.shape == (n_windows,)
            assert scores[valid] == pytest.approx(expected[valid], abs=1e-9)


class TestExtensionTablesMany:
    def test_matches_single_prefix_tables(self, small_engine, rng):
        cells = small_engine.active_cells
        prefixes = [
            TrajectoryPattern(tuple(int(c) for c in rng.choice(cells, size=length)))
            for length in (1, 1, 2, 2, 3)
        ]
        many = small_engine.extend_right_tables_many(prefixes)
        for prefix, (nm_table, match_table) in zip(prefixes, many):
            nm_single, match_single = small_engine.extend_right_tables(prefix)
            assert nm_table.keys() == nm_single.keys()
            for cell in nm_single:
                assert nm_table[cell] == pytest.approx(nm_single[cell], abs=1e-9)
                assert match_table[cell] == pytest.approx(
                    match_single[cell], rel=1e-9, abs=1e-300
                )


class TestVectorisedIndexBuild:
    def test_identical_to_scalar_collection(self, small_engine):
        vec = small_engine._collect_index_entries()
        ref = small_engine._collect_index_entries_scalar()
        v_cells, v_rows, v_vals = (np.concatenate(part) for part in vec)
        r_cells, r_rows, r_vals = (np.concatenate(part) for part in ref)
        v_order = np.lexsort((v_rows, v_cells))
        r_order = np.lexsort((r_rows, r_cells))
        assert np.array_equal(v_cells[v_order], r_cells[r_order])
        assert np.array_equal(v_rows[v_order], r_rows[r_order])
        assert np.array_equal(v_vals[v_order], r_vals[r_order])

    def test_snapshot_cap_respected(self, rng):
        trajs = [
            UncertainTrajectory(rng.uniform(0.2, 0.8, (10, 2)), 0.05)
            for _ in range(4)
        ]
        dataset = TrajectoryDataset(trajs)
        grid = Grid(BoundingBox.unit(), nx=20, ny=20)
        engine = NMEngine(
            dataset,
            grid,
            EngineConfig(delta=0.05, min_prob=1e-6, max_cells_per_snapshot=8),
        )
        assert engine.n_index_entries <= 8 * dataset.total_snapshots()
        # Each capped snapshot keeps its highest-probability cells, so the
        # best singular pattern survives the cap.
        full = NMEngine(dataset, grid, EngineConfig(delta=0.05, min_prob=1e-6))
        best_full = max(full.singular_nm_table().items(), key=lambda kv: kv[1])
        best_capped = max(engine.singular_nm_table().items(), key=lambda kv: kv[1])
        assert best_full[0] == best_capped[0]


class TestColumnCacheEviction:
    def test_evicts_at_configured_size_and_stays_correct(self, small_dataset):
        grid = small_dataset.make_grid(0.03)
        size = 4
        engine = NMEngine(
            small_dataset,
            grid,
            EngineConfig(delta=0.03, min_prob=1e-6, column_cache_size=size),
        )
        reference = NMEngine(
            small_dataset, grid, EngineConfig(delta=0.03, min_prob=1e-6)
        )
        cells = engine.active_cells[: 3 * size]
        assert len(cells) > size
        for cell in cells:
            engine._column(cell)
            assert len(engine._column_cache) <= size
        # The cache is full and the early columns were evicted.
        assert len(engine._column_cache) == size
        assert cells[0] not in engine._column_cache
        # Re-requesting an evicted column rebuilds it correctly.
        rebuilt = engine._column(cells[0])
        assert np.array_equal(rebuilt, reference._column(cells[0]))
        # Batched evaluation under cache pressure still equals scalar.
        patterns = [
            TrajectoryPattern((a, b)) for a, b in zip(cells, cells[1:])
        ]
        got = engine.nm_batch(patterns)
        assert got == pytest.approx(
            [reference.nm(p) for p in patterns], abs=1e-9
        )
        assert len(engine._column_cache) <= size
