"""Batched prefix-confirmation shared by prediction, forecasting and serving.

Both online pattern applications -- the Fig. 3 prediction override
(:class:`~repro.apps.prediction.PatternLibrary`) and the pre-allocation
forecaster (:class:`~repro.apps.forecast.LocationForecaster`) -- answer the
same inner question for every query: *which (pattern, prefix-length) pairs
does the trailing history confirm, and how confidently?*  Historically each
kept its own Python loop over patterns and prefix lengths, calling
:func:`~repro.uncertainty.gaussian.prob_within` once per pair; the serving
layer (:mod:`repro.serve`) turns this from a per-experiment cost into a
per-request cost, so the loop became the hot path.

:class:`ConfirmationIndex` flattens every candidate ``(pattern, q)`` pair
of a library into padded position arrays once, at construction.  A query
then evaluates *all* candidates with a single vectorised
:func:`prob_within` call and one ``np.multiply.reduceat``.  The
per-element probabilities and the sequential product order are identical
to the scalar loop's; only the final geometric-mean root goes through
numpy's array-pow instead of scalar-pow, whose results can differ in the
last ULP.  Both application classes and the serving path share this one
code path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.uncertainty.gaussian import ProbModel, prob_within


class ConfirmationIndex:
    """Flattened ``(pattern, prefix-length)`` candidates of a pattern library.

    Parameters
    ----------
    patterns:
        Usable library patterns (no wildcards, ``len > min_prefix`` --
        callers pre-filter exactly as before).
    grid:
        The grid the pattern cells refer to.
    min_prefix:
        Shortest prefix allowed to confirm.

    One *candidate* is a pair ``(pattern i, prefix length q)`` with
    ``min_prefix <= q <= len(p_i) - 1``; its confirmation confidence for a
    history of length ``h >= q`` is the geometric-mean Eq. 2 probability of
    the trailing ``q`` history entries under the pattern's first ``q``
    centers.  Candidates are ordered by (pattern, q) -- the same order the
    scalar loops visited them in, which keeps first-wins tie-breaking
    identical.
    """

    def __init__(
        self,
        patterns: Sequence[TrajectoryPattern],
        grid: Grid,
        min_prefix: int,
    ) -> None:
        self.min_prefix = min_prefix
        pattern_idx: list[int] = []
        qs: list[int] = []
        next_cells: list[int] = []
        next_centers: list[np.ndarray] = []
        nonconstant: list[bool] = []
        pos_centers: list[np.ndarray] = []
        pos_rel: list[np.ndarray] = []
        for i, pattern in enumerate(patterns):
            centers = pattern.centers(grid)
            for q in range(min_prefix, len(pattern)):
                pattern_idx.append(i)
                qs.append(q)
                next_cells.append(pattern.cells[q])
                next_centers.append(centers[q])
                nonconstant.append(len(set(pattern.cells[:q])) >= 2)
                pos_centers.append(centers[:q])
                # History offset from the end: position j of the prefix
                # lines up with history entry ``h + (j - q)``.
                pos_rel.append(np.arange(q, dtype=np.int64) - q)

        self.n_candidates = len(qs)
        self.pattern_idx = np.asarray(pattern_idx, dtype=np.int64)
        self.q = np.asarray(qs, dtype=np.int64)
        self.next_cell = np.asarray(next_cells, dtype=np.int64)
        self.next_center = (
            np.vstack(next_centers) if next_centers else np.empty((0, 2))
        )
        self.nonconstant = np.asarray(nonconstant, dtype=bool)
        if pos_centers:
            self._pos_centers = np.vstack(pos_centers)
            self._pos_rel = np.concatenate(pos_rel)
            self._starts = np.concatenate([[0], np.cumsum(self.q)[:-1]])
        else:
            self._pos_centers = np.empty((0, 2))
            self._pos_rel = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return self.n_candidates

    def confidences(
        self,
        history: np.ndarray,
        sigma: float,
        delta_eff: float,
        prob_model: ProbModel,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate confirmation confidence for one trailing history.

        Parameters
        ----------
        history:
            ``(h, 2)`` trailing observations, oldest first (velocities for
            the prediction library, positions for the forecaster).
        sigma:
            Standard deviation of each history entry.
        delta_eff:
            Effective confirmation probe scale.
        prob_model:
            ``Prob`` geometry.

        Returns ``(conf, valid)``: the geometric-mean confidence per
        candidate and the mask of candidates whose prefix fits the history
        (``q <= h``).  Confidences of invalid candidates are meaningless.
        """
        h = len(history)
        valid = self.q <= h
        if self.n_candidates == 0 or not valid.any():
            return np.zeros(self.n_candidates), valid
        # Clamp out-of-range history indices of invalid candidates: their
        # probabilities are computed (vectorisation is cheaper than
        # compaction) and discarded through the mask.
        idx = np.clip(h + self._pos_rel, 0, h - 1)
        probs = prob_within(
            history[idx],
            np.asarray(sigma, dtype=float),
            self._pos_centers,
            delta_eff,
            model=prob_model,
        )
        # multiply.reduceat applies the product sequentially per segment --
        # the exact FP order of np.prod over each scalar loop's segment.
        # The ** below is array-pow; scalar-pow can differ in the last ULP.
        seg_prod = np.multiply.reduceat(probs, self._starts)
        conf = seg_prod ** (1.0 / self.q)
        return conf, valid

    def best_candidate(
        self,
        history: np.ndarray,
        sigma: float,
        delta_eff: float,
        prob_model: ProbModel,
        threshold: float,
        require_nonconstant: bool = False,
    ) -> int | None:
        """Index of the best confirmed candidate, or ``None``.

        "Best" is the longest confirmed context, ties broken by confidence,
        then by candidate order (first wins) -- identical to the scalar
        loop's ``(q, conf)`` tuple maximum under strict improvement.
        """
        conf, valid = self.confidences(history, sigma, delta_eff, prob_model)
        ok = valid & (conf >= threshold)
        if require_nonconstant:
            ok &= self.nonconstant
        if not ok.any():
            return None
        # q + conf orders exactly like the tuple (q, conf): q differences
        # are >= 1 while confidence differences are < 1.
        key = np.where(ok, self.q + conf, -np.inf)
        return int(np.argmax(key))

    def vote(
        self,
        history: np.ndarray,
        sigma: float,
        delta_eff: float,
        prob_model: ProbModel,
        threshold: float,
    ) -> dict[int, float]:
        """Continuation-cell votes of every confirmed candidate.

        Each confirmed candidate votes for its continuation cell with
        weight ``conf * q`` (longer confirmed contexts vote more strongly);
        votes accumulate per cell in candidate order, matching the scalar
        loop's summation order bit-for-bit.
        """
        conf, valid = self.confidences(history, sigma, delta_eff, prob_model)
        ok = valid & (conf >= threshold)
        if not ok.any():
            return {}
        votes: dict[int, float] = {}
        weights = conf[ok] * self.q[ok]
        for cell, weight in zip(self.next_cell[ok], weights):
            cell = int(cell)
            votes[cell] = votes.get(cell, 0.0) + float(weight)
        return votes
