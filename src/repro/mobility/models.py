"""Motion-prediction models (section 3.1 / Fig. 3).

All three models the paper plugs trajectory patterns into:

* :class:`LinearModel` -- LM, the piecewise-linear scheme of Wolfson et
  al. [12]: Eq. 1, ``predict_loc = last_loc + v * t`` with the velocity
  taken from the last two delivered reports.
* :class:`KalmanModel` -- LKF, the Kalman-filter tracker of Jain et
  al. [2]: a constant-velocity Kalman filter over the delivered reports;
  between reports the state propagates ballistically.
* :class:`RecursiveMotionModel` -- RMF, the recursive motion function of
  Tao et al. [11]: ``x_t = sum_{j=1..f} c_j x_{t-j}`` with coefficients
  re-fitted by (ridge-regularised) least squares on the recent position
  history.  We fit scalar coefficients shared by both axes on the server's
  tick-resolution estimate history, which is the retrospect window the
  server actually has; a divergence guard falls back to linear prediction
  when the recursion goes unstable (RMF is known to do so on short
  histories; Tao et al. handle this with matrix conditioning we do not
  need at simulation scale).

Models are deliberately *deterministic* given the report stream: the
dead-reckoning protocol relies on the object mirroring the server's model
exactly (see :mod:`repro.mobility.reporting`).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np


class MotionModel(abc.ABC):
    """Interface shared by the server and the object-side mirror.

    Time is continuous (float ticks); reports must arrive with strictly
    increasing timestamps.
    """

    @abc.abstractmethod
    def observe(self, t: float, position: np.ndarray) -> None:
        """Ingest a delivered location report."""

    @abc.abstractmethod
    def predict(self, t: float) -> np.ndarray:
        """Predicted position at time ``t`` (>= the last report time)."""

    @abc.abstractmethod
    def clone(self) -> "MotionModel":
        """A fresh model of the same configuration (no shared state)."""


class LinearModel(MotionModel):
    """LM [12]: Eq. 1 dead reckoning from the last two reports."""

    def __init__(self) -> None:
        self._last_t: float | None = None
        self._last_pos: np.ndarray | None = None
        self._velocity = np.zeros(2)

    def observe(self, t: float, position: np.ndarray) -> None:
        position = np.asarray(position, dtype=float)
        if self._last_t is not None:
            if t <= self._last_t:
                raise ValueError("report times must be strictly increasing")
            self._velocity = (position - self._last_pos) / (t - self._last_t)
        self._last_t = t
        self._last_pos = position.copy()

    def predict(self, t: float) -> np.ndarray:
        if self._last_t is None:
            raise RuntimeError("predict before any report")
        return self._last_pos + self._velocity * (t - self._last_t)

    def clone(self) -> "LinearModel":
        return LinearModel()


class KalmanModel(MotionModel):
    """LKF [2]: constant-velocity Kalman filter over delivered reports.

    State ``[x, y, vx, vy]``; the two axes are independent, so the filter
    runs as two decoupled 2-state filters sharing the same gain schedule.

    Parameters
    ----------
    process_noise:
        Acceleration-noise intensity ``q`` (white-noise acceleration model).
    measurement_noise:
        Report position noise standard deviation ``r`` (GPS readings are
        near-exact at simulation scale, so the default is small).
    """

    def __init__(self, process_noise: float = 1e-3, measurement_noise: float = 1e-4) -> None:
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self._t: float | None = None
        self._state = np.zeros(4)  # x, y, vx, vy
        self._cov = np.eye(4)

    def _propagate(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        f = np.eye(4)
        f[0, 2] = f[1, 3] = dt
        q = self.process_noise
        # White-noise acceleration discretisation per axis.
        q11 = q * dt**3 / 3.0
        q12 = q * dt**2 / 2.0
        q22 = q * dt
        qm = np.zeros((4, 4))
        qm[0, 0] = qm[1, 1] = q11
        qm[0, 2] = qm[2, 0] = qm[1, 3] = qm[3, 1] = q12
        qm[2, 2] = qm[3, 3] = q22
        state = f @ self._state
        cov = f @ self._cov @ f.T + qm
        return state, cov

    def observe(self, t: float, position: np.ndarray) -> None:
        position = np.asarray(position, dtype=float)
        if self._t is None:
            self._state = np.array([position[0], position[1], 0.0, 0.0])
            self._cov = np.diag([self.measurement_noise**2] * 2 + [1.0, 1.0])
            self._t = t
            return
        if t <= self._t:
            raise ValueError("report times must be strictly increasing")
        state, cov = self._propagate(t - self._t)
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0
        s = h @ cov @ h.T + np.eye(2) * self.measurement_noise**2
        gain = cov @ h.T @ np.linalg.inv(s)
        innovation = position - h @ state
        self._state = state + gain @ innovation
        self._cov = (np.eye(4) - gain @ h) @ cov
        self._t = t

    def predict(self, t: float) -> np.ndarray:
        if self._t is None:
            raise RuntimeError("predict before any report")
        dt = t - self._t
        return self._state[:2] + self._state[2:] * dt

    def clone(self) -> "KalmanModel":
        return KalmanModel(self.process_noise, self.measurement_noise)


class RecursiveMotionModel(MotionModel):
    """RMF [11]: auto-regressive motion over the recent estimate history.

    Parameters
    ----------
    retrospect:
        The recursion order ``f`` (how many past positions feed the motion
        function).
    window:
        Number of recent history positions used to fit the coefficients
        (must exceed ``retrospect``).
    ridge:
        Tikhonov regulariser for the least-squares fit.
    max_speed:
        Divergence guard: when a recursive prediction implies a per-tick
        displacement above this, the model falls back to linear prediction
        from its last two history points.
    """

    def __init__(
        self,
        retrospect: int = 3,
        window: int = 8,
        ridge: float = 1e-6,
        max_speed: float = 1.0,
    ) -> None:
        if retrospect < 2:
            raise ValueError("retrospect must be at least 2")
        if window <= retrospect:
            raise ValueError("window must exceed retrospect")
        if max_speed <= 0:
            raise ValueError("max_speed must be positive")
        self.retrospect = retrospect
        self.window = window
        self.ridge = ridge
        self.max_speed = max_speed
        self._t: float | None = None
        self._history: list[np.ndarray] = []  # tick-resolution positions

    def observe(self, t: float, position: np.ndarray) -> None:
        position = np.asarray(position, dtype=float)
        if self._t is not None and t <= self._t:
            raise ValueError("report times must be strictly increasing")
        if self._t is None:
            self._history = [position.copy()]
        else:
            # Fill the tick-resolution history with the model's own
            # estimates up to (not including) the report tick, then pin the
            # report.  This is the retrospect window the server actually
            # has between sparse reports.
            gap = int(round(t - self._t))
            for step in range(1, gap):
                self._history.append(self.predict(self._t + step))
            self._history.append(position.copy())
        self._history = self._history[-self.window :]
        self._t = t

    def _fit(self) -> np.ndarray | None:
        """Least-squares fit of ``x_t ~ sum c_j x_{t-j}`` on the history."""
        f = self.retrospect
        hist = np.asarray(self._history)
        n = len(hist)
        if n < f + 1:
            return None
        rows = []
        targets = []
        for i in range(f, n):
            # Most recent first: column j holds x_{t-1-j}.
            rows.append(hist[i - 1 :: -1][:f])
            targets.append(hist[i])
        a = np.concatenate([np.asarray(r)[None, :, :] for r in rows])  # (s, f, 2)
        b = np.asarray(targets)  # (s, 2)
        # Shared coefficients across axes: stack both axes as samples.
        design = np.concatenate([a[:, :, 0], a[:, :, 1]])  # (2s, f)
        response = np.concatenate([b[:, 0], b[:, 1]])  # (2s,)
        gram = design.T @ design + self.ridge * np.eye(f)
        try:
            return np.linalg.solve(gram, design.T @ response)
        except np.linalg.LinAlgError:
            return None

    def predict(self, t: float) -> np.ndarray:
        if self._t is None:
            raise RuntimeError("predict before any report")
        steps = int(round(t - self._t))
        if steps <= 0:
            return self._history[-1].copy()
        coeffs = self._fit()
        if coeffs is None:
            return self._linear_fallback(steps)
        window = [p.copy() for p in self._history[-self.retrospect :]]
        if len(window) < self.retrospect:
            return self._linear_fallback(steps)
        pos = window[-1]
        for _ in range(steps):
            recent = np.asarray(window[::-1][: self.retrospect])  # newest first
            nxt = coeffs @ recent
            if np.hypot(*(nxt - pos)) > self.max_speed:
                return self._linear_fallback(steps)
            window.append(nxt)
            window.pop(0)
            pos = nxt
        return pos

    def _linear_fallback(self, steps: int) -> np.ndarray:
        if len(self._history) >= 2:
            v = self._history[-1] - self._history[-2]
        else:
            v = np.zeros(2)
        return self._history[-1] + v * steps

    def clone(self) -> "RecursiveMotionModel":
        return RecursiveMotionModel(
            self.retrospect, self.window, self.ridge, self.max_speed
        )


_MODEL_FACTORIES: dict[str, Callable[[], MotionModel]] = {
    "lm": LinearModel,
    "lkf": KalmanModel,
    "rmf": RecursiveMotionModel,
}


def make_model(name: str) -> MotionModel:
    """Build a prediction model by its paper abbreviation: lm, lkf or rmf."""
    try:
        return _MODEL_FACTORIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; expected one of {sorted(_MODEL_FACTORIES)}"
        ) from None
