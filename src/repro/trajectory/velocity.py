"""Location-to-velocity trajectory transform (paper section 3.2).

Two objects travelling in different regions of space have incomparable
location trajectories; their *velocity* trajectories, obtained by
differencing consecutive snapshots, are directly comparable.  The paper
derives the transform for independent Gaussian snapshots:

* velocity mean: ``l'_i = l_{i+1} - l_i``
* velocity sigma: ``sigma'_i = sqrt(sigma_i^2 + sigma_{i+1}^2)``

A correlation coefficient ``rho`` between consecutive snapshot errors is
supported as the paper's parenthetical "slightly more complicated formula":
``sigma'^2 = sigma_i^2 + sigma_{i+1}^2 - 2 rho sigma_i sigma_{i+1}``.

The transformed trajectory has the same ``(mean, sigma)`` snapshot form as a
location trajectory, so the miner treats both uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory.trajectory import UncertainTrajectory


def to_velocity_trajectory(
    trajectory: UncertainTrajectory, rho: float = 0.0
) -> UncertainTrajectory:
    """Transform a location trajectory into a velocity trajectory.

    Parameters
    ----------
    trajectory:
        Location trajectory with at least two snapshots.
    rho:
        Correlation between consecutive snapshot errors (0 = independent,
        the paper's default assumption).

    Returns
    -------
    UncertainTrajectory
        Velocity trajectory with ``len(trajectory) - 1`` snapshots; the
        ``object_id`` is preserved.
    """
    if len(trajectory) < 2:
        raise ValueError("a velocity trajectory needs at least two location snapshots")
    if not -1.0 <= rho <= 1.0:
        raise ValueError("rho must be in [-1, 1]")

    means = np.diff(trajectory.means, axis=0)
    s = trajectory.sigmas
    variance = s[:-1] ** 2 + s[1:] ** 2 - 2.0 * rho * s[:-1] * s[1:]
    # rho = 1 with equal sigmas gives zero variance; keep sigma strictly
    # positive as required by the Gaussian model.
    sigmas = np.sqrt(np.maximum(variance, np.finfo(float).tiny))
    return UncertainTrajectory(
        means,
        sigmas,
        object_id=trajectory.object_id,
        start_time=trajectory.start_time,
        dt=trajectory.dt,
    )


def to_velocity_dataset(dataset, rho: float = 0.0):
    """Map :func:`to_velocity_trajectory` over a dataset.

    Trajectories with fewer than two snapshots cannot be differenced and are
    dropped (with their count reported via the returned dataset's metadata).
    """
    from repro.trajectory.dataset import TrajectoryDataset

    converted = [
        to_velocity_trajectory(t, rho=rho) for t in dataset.trajectories if len(t) >= 2
    ]
    dropped = len(dataset.trajectories) - len(converted)
    metadata = dict(dataset.metadata)
    metadata["kind"] = "velocity"
    if dropped:
        metadata["dropped_short_trajectories"] = dropped
    return TrajectoryDataset(converted, metadata=metadata)
